//! Symbolic expressions for jump-target evaluation.
//!
//! A tiny term language — constants, registers, sums, scaled products
//! and memory loads — is all the jump-table patterns need. This mirrors
//! the paper's description of Dyninst's approach: "use backward slicing
//! to identify the instructions that are involved in the target
//! calculation and construct a symbolic expression of the jump target"
//! (Section 2.1). Unknown operations produce [`Expr::Top`], which kills
//! the path (and, thanks to union-over-paths, only that path).

use pba_isa::{MemRef, Reg, RegSet, Value};

/// A symbolic value.
///
/// `Ord`/`Hash` are derived (structural) so expressions can serve as
/// set members — the engine-backed slicing lattice keeps its per-block
/// path states in ordered sets keyed by the expression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Expr {
    /// Unknown.
    Top,
    /// A compile-time constant (absolute addresses included).
    Const(u64),
    /// The value a register held at the current (moving) program point.
    Reg(Reg),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Product by a constant scale.
    Mul(Box<Expr>, u64),
    /// Memory load of `width` bytes (optionally sign-extended to 64).
    Load {
        /// Load width in bytes.
        width: u8,
        /// Sign-extend to 64 bits (e.g. `movsxd`).
        sext: bool,
        /// Address expression.
        addr: Box<Expr>,
    },
}

impl Expr {
    /// Address expression of a memory operand.
    pub fn of_mem(m: &MemRef) -> Expr {
        if m.rip_based || (m.base.is_none() && m.index.is_none()) {
            // Resolved RIP-relative or absolute: constant base, maybe an
            // index.
            let base = Expr::Const(m.disp as u64);
            return match m.index {
                Some(i) => Expr::Add(
                    Box::new(base),
                    Box::new(Expr::Mul(Box::new(Expr::Reg(i)), m.scale as u64)),
                ),
                None => base,
            };
        }
        let mut e = match m.base {
            Some(b) => Expr::Reg(b),
            None => Expr::Const(0),
        };
        if let Some(i) = m.index {
            e = Expr::Add(Box::new(e), Box::new(Expr::Mul(Box::new(Expr::Reg(i)), m.scale as u64)));
        }
        if m.disp != 0 {
            e = Expr::Add(Box::new(e), Box::new(Expr::Const(m.disp as u64)));
        }
        e
    }

    /// Expression of a readable operand.
    pub fn of_value(v: &Value, width: u8, sext: bool) -> Expr {
        match v {
            Value::Reg(r) => Expr::Reg(*r),
            Value::Imm(i) => Expr::Const(*i as u64),
            Value::Mem(m, w) => {
                Expr::Load { width: *w.min(&width.max(*w)), sext, addr: Box::new(Expr::of_mem(m)) }
            }
        }
    }

    /// Substitute every occurrence of register `r` with `v`.
    pub fn subst(&self, r: Reg, v: &Expr) -> Expr {
        match self {
            Expr::Reg(x) if *x == r => v.clone(),
            Expr::Add(a, b) => Expr::Add(Box::new(a.subst(r, v)), Box::new(b.subst(r, v))),
            Expr::Mul(a, k) => Expr::Mul(Box::new(a.subst(r, v)), *k),
            Expr::Load { width, sext, addr } => {
                Expr::Load { width: *width, sext: *sext, addr: Box::new(addr.subst(r, v)) }
            }
            other => other.clone(),
        }
    }

    /// Free (unresolved) registers.
    pub fn free_regs(&self) -> RegSet {
        match self {
            Expr::Reg(r) => RegSet::of(*r),
            Expr::Add(a, b) => a.free_regs().union(b.free_regs()),
            Expr::Mul(a, _) => a.free_regs(),
            Expr::Load { addr, .. } => addr.free_regs(),
            _ => RegSet::EMPTY,
        }
    }

    /// Does any subterm equal Top?
    pub fn has_top(&self) -> bool {
        match self {
            Expr::Top => true,
            Expr::Add(a, b) => a.has_top() || b.has_top(),
            Expr::Mul(a, _) => a.has_top(),
            Expr::Load { addr, .. } => addr.has_top(),
            _ => false,
        }
    }

    /// Constant folding + flattening normalization.
    pub fn simplify(&self) -> Expr {
        match self {
            Expr::Add(..) => {
                let mut atoms = Vec::new();
                let mut konst: u64 = 0;
                self.flatten_add(&mut atoms, &mut konst);
                let mut e: Option<Expr> = None;
                for a in atoms {
                    e = Some(match e {
                        None => a,
                        Some(prev) => Expr::Add(Box::new(prev), Box::new(a)),
                    });
                }
                match (e, konst) {
                    (None, k) => Expr::Const(k),
                    (Some(e), 0) => e,
                    (Some(e), k) => Expr::Add(Box::new(e), Box::new(Expr::Const(k))),
                }
            }
            Expr::Mul(a, k) => match a.simplify() {
                Expr::Const(c) => Expr::Const(c.wrapping_mul(*k)),
                s if *k == 1 => s,
                s => Expr::Mul(Box::new(s), *k),
            },
            Expr::Load { width, sext, addr } => {
                Expr::Load { width: *width, sext: *sext, addr: Box::new(addr.simplify()) }
            }
            other => other.clone(),
        }
    }

    /// Collect non-constant atoms of a (nested) sum and fold constants.
    fn flatten_add(&self, atoms: &mut Vec<Expr>, konst: &mut u64) {
        match self {
            Expr::Add(a, b) => {
                a.flatten_add(atoms, konst);
                b.flatten_add(atoms, konst);
            }
            Expr::Const(c) => *konst = konst.wrapping_add(*c),
            other => {
                let s = other.simplify();
                if let Expr::Const(c) = s {
                    *konst = konst.wrapping_add(c);
                } else {
                    atoms.push(s);
                }
            }
        }
    }

    /// Flatten a simplified sum into `(non-const atoms, constant)`.
    pub fn as_sum(&self) -> (Vec<Expr>, u64) {
        let mut atoms = Vec::new();
        let mut konst = 0u64;
        self.flatten_add(&mut atoms, &mut konst);
        (atoms, konst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_expr_forms() {
        let m = MemRef::base_index(Some(Reg::RDI), Reg::RAX, 4, 16);
        let e = Expr::of_mem(&m).simplify();
        let (atoms, k) = e.as_sum();
        assert_eq!(k, 16);
        assert!(atoms.contains(&Expr::Reg(Reg::RDI)));
        assert!(atoms.contains(&Expr::Mul(Box::new(Expr::Reg(Reg::RAX)), 4)));
        // Absolute / rip-based.
        let abs = Expr::of_mem(&MemRef::absolute(0x601000)).simplify();
        assert_eq!(abs, Expr::Const(0x601000));
    }

    #[test]
    fn substitution_and_folding() {
        // (rax*8 + 0x1000)[rax := 5] → 0x1028.
        let e = Expr::Add(
            Box::new(Expr::Mul(Box::new(Expr::Reg(Reg::RAX)), 8)),
            Box::new(Expr::Const(0x1000)),
        );
        let s = e.subst(Reg::RAX, &Expr::Const(5)).simplify();
        assert_eq!(s, Expr::Const(0x1028));
    }

    #[test]
    fn free_regs_and_top() {
        let e = Expr::Load {
            width: 4,
            sext: true,
            addr: Box::new(Expr::Add(
                Box::new(Expr::Reg(Reg::RBX)),
                Box::new(Expr::Mul(Box::new(Expr::Reg(Reg::RCX)), 4)),
            )),
        };
        assert_eq!(e.free_regs(), RegSet::from_iter([Reg::RBX, Reg::RCX]));
        assert!(!e.has_top());
        let dead = e.subst(Reg::RBX, &Expr::Top);
        assert!(dead.has_top());
    }

    #[test]
    fn nested_sum_flattening() {
        let e = Expr::Add(
            Box::new(Expr::Add(Box::new(Expr::Const(8)), Box::new(Expr::Reg(Reg::RSI)))),
            Box::new(Expr::Add(Box::new(Expr::Const(16)), Box::new(Expr::Const(8)))),
        );
        let s = e.simplify();
        let (atoms, k) = s.as_sum();
        assert_eq!(k, 32);
        assert_eq!(atoms, vec![Expr::Reg(Reg::RSI)]);
    }

    #[test]
    fn mul_by_one_dissolves() {
        let e = Expr::Mul(Box::new(Expr::Reg(Reg::RDX)), 1).simplify();
        assert_eq!(e, Expr::Reg(Reg::RDX));
    }
}
