//! Backward register-liveness analysis (AC6).
//!
//! Classic may-liveness over bit-mask register sets: a register is live
//! at a point if some path to a use avoids an intervening definition.
//! Block-level transfer functions are precomputed (`gen`/`kill` masks)
//! into a [`LivenessSpec`]; the fixpoint itself is the generic engine's
//! ([`crate::engine`]), so liveness runs under either executor.
//! [`RegSet`] facts are `Copy`, so with the engine's scratch-fact loop a
//! liveness fixpoint performs no per-visit allocation at all.
//!
//! ABI boundary conditions (System V):
//! * at `ret`: the return register and callee-saved registers are live;
//! * at a call: argument registers are considered used and caller-saved
//!   registers killed (the callee may clobber them).

use crate::engine::{DataflowSpec, Direction, ExecutorKind, FlowGraph};
use crate::view::CfgView;
use pba_cfg::BlockIndex;
use pba_isa::{ControlFlow, Reg, RegSet};
use std::sync::Arc;

/// Per-block liveness facts, dense over the function's block list with
/// address-keyed accessors ([`LivenessResult::live_in`] /
/// [`LivenessResult::live_out`]) for compatibility.
#[derive(Debug, Clone, Default)]
pub struct LivenessResult {
    blocks: Arc<Vec<u64>>,
    index: Arc<BlockIndex>,
    live_in: Vec<RegSet>,
    live_out: Vec<RegSet>,
}

impl LivenessResult {
    /// Block addresses in the dense order of the fact vectors.
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Bytes of heap owned by the fact vectors (the shared block list
    /// and index belong to the function's graph, counted with the IR).
    pub fn heap_bytes(&self) -> usize {
        (self.live_in.capacity() + self.live_out.capacity()) * std::mem::size_of::<RegSet>()
    }

    /// Registers live at `block`'s entry (empty for non-members).
    pub fn live_in(&self, block: u64) -> RegSet {
        self.index.get(block).map(|i| self.live_in[i]).unwrap_or(RegSet::EMPTY)
    }

    /// Registers live at `block`'s exit (empty for non-members).
    pub fn live_out(&self, block: u64) -> RegSet {
        self.index.get(block).map(|i| self.live_out[i]).unwrap_or(RegSet::EMPTY)
    }

    /// Number of live registers at block entry (BinFeat's feature).
    pub fn live_in_count(&self, block: u64) -> u32 {
        self.live_in(block).len()
    }
}

/// Registers deemed live at a function exit.
fn exit_live() -> RegSet {
    let mut s = Reg::sysv_callee_saved();
    s.insert(Reg::RAX);
    s.insert(Reg::RSP);
    s
}

/// Per-instruction transfer `live = gen ∪ (live \ kill)` applied in
/// reverse; calls additionally use args and kill caller-saved registers.
fn transfer_insn(i: &pba_isa::Insn, mut live: RegSet) -> RegSet {
    match i.control_flow() {
        ControlFlow::Call { .. } | ControlFlow::IndirectCall => {
            live = live.minus(Reg::sysv_caller_saved());
            live = live.union(RegSet::from_iter(Reg::SYSV_ARGS));
            live.insert(Reg::RSP);
            live
        }
        _ => {
            live = live.minus(i.regs_written());
            live.union(i.regs_read())
        }
    }
}

/// Liveness as a [`DataflowSpec`]: backward may-analysis whose facts are
/// [`RegSet`] masks, with `gen`/`kill` precomputed per block — dense
/// vectors over the view's block list, keyed through a [`BlockIndex`]
/// instead of addr-keyed hash maps.
pub struct LivenessSpec {
    index: BlockIndex,
    gen: Vec<RegSet>,
    kill: Vec<RegSet>,
}

impl LivenessSpec {
    /// Precompute block transfer masks from `view` (each block's
    /// already-decoded instructions are read once, borrowed).
    pub fn build(view: &dyn CfgView) -> LivenessSpec {
        let blocks = view.blocks();
        let index = BlockIndex::new(blocks);
        let mut gen = vec![RegSet::EMPTY; blocks.len()];
        let mut kill = vec![RegSet::EMPTY; blocks.len()];
        for (bi, &b) in blocks.iter().enumerate() {
            let mut g = RegSet::EMPTY;
            let mut k = RegSet::EMPTY;
            // Forward scan: a read is gen only if not already killed.
            for i in view.insns(b) {
                match i.control_flow() {
                    ControlFlow::Call { .. } | ControlFlow::IndirectCall => {
                        g = g.union(RegSet::from_iter(Reg::SYSV_ARGS).minus(k));
                        k = k.union(Reg::sysv_caller_saved());
                    }
                    _ => {
                        g = g.union(i.regs_read().minus(k));
                        k = k.union(i.regs_written());
                    }
                }
            }
            gen[bi] = g;
            kill[bi] = k;
        }
        LivenessSpec { index, gen, kill }
    }
}

impl DataflowSpec for LivenessSpec {
    type Fact = RegSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self, _block: u64) -> RegSet {
        RegSet::EMPTY
    }

    fn boundary(&self, _block: u64) -> RegSet {
        exit_live()
    }

    fn meet(&self, into: &mut RegSet, incoming: &RegSet) {
        *into = into.union(*incoming);
    }

    fn transfer(&self, block: u64, input: &RegSet) -> RegSet {
        let i = self.index.get(block).expect("spec covers every graph block");
        self.gen[i].union(input.minus(self.kill[i]))
    }

    // `RegSet` is `Copy`: the default `transfer_into` is already
    // allocation-free, no override needed.
}

/// Run liveness over one function (serial executor).
pub fn liveness(view: &dyn CfgView) -> LivenessResult {
    liveness_with(view, ExecutorKind::Serial)
}

/// Run liveness over one function with an explicit executor.
pub fn liveness_with(view: &dyn CfgView, exec: ExecutorKind) -> LivenessResult {
    liveness_on(view, &FlowGraph::build(view), exec)
}

/// [`liveness_with`] over a prebuilt [`FlowGraph`] (so whole-binary
/// drivers can share one graph — and its memoized RPO ranks — across
/// all analyses; [`crate::ir::FuncIr::graph`] is that graph).
pub fn liveness_on(view: &dyn CfgView, graph: &FlowGraph, exec: ExecutorKind) -> LivenessResult {
    let spec = LivenessSpec::build(view);
    let r = exec.run(&spec, graph);
    // Direction-relative input is the block's live-out set.
    let (blocks, index, live_out, live_in) = r.into_dense();
    LivenessResult { blocks, index, live_in, live_out }
}

/// Walk a block's instructions backward to compute liveness *before*
/// each instruction, given the block's live-out set. Returns pairs of
/// `(insn address, live set before the instruction)` in address order.
pub fn per_insn_liveness(
    view: &dyn CfgView,
    result: &LivenessResult,
    block: u64,
) -> Vec<(u64, RegSet)> {
    let insns = view.insns(block);
    let mut live = result.live_out(block);
    let mut out: Vec<(u64, RegSet)> = Vec::with_capacity(insns.len());
    for i in insns.iter().rev() {
        live = transfer_insn(i, live);
        out.push((i.addr, live));
    }
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::VecView;
    use pba_cfg::EdgeKind;
    use pba_isa::x86::decode_one;

    fn decode_seq(bytes: &[u8], base: u64) -> Vec<pba_isa::Insn> {
        let mut out = vec![];
        let mut at = 0usize;
        while at < bytes.len() {
            let i = decode_one(&bytes[at..], base + at as u64).unwrap();
            at += i.len as usize;
            out.push(i);
        }
        out
    }

    #[test]
    fn straightline_use_def() {
        // mov rax, rdi ; add rax, rsi ; ret
        let mut code = vec![];
        pba_isa::x86::encode::mov_rr(&mut code, Reg::RAX, Reg::RDI);
        pba_isa::x86::encode::alu_rr(&mut code, pba_isa::insn::AluKind::Add, Reg::RAX, Reg::RSI);
        pba_isa::x86::encode::ret(&mut code);
        let end = 0x1000 + code.len() as u64;
        let view = VecView::new(0x1000, vec![(0x1000, end, decode_seq(&code, 0x1000))], vec![]);
        let r = liveness(&view);
        let live_in = r.live_in(0x1000);
        assert!(live_in.contains(Reg::RDI), "rdi is an argument use");
        assert!(live_in.contains(Reg::RSI));
        assert!(!live_in.contains(Reg::RAX), "rax defined before use");
    }

    #[test]
    fn diamond_merges_liveness() {
        // b0: cmp rdi, 0; je b2
        // b1: mov rax, rsi; jmp b3
        // b2: mov rax, rdx
        // b3: ret
        let enc = pba_isa::x86::encode::cmp_ri;
        let mut c0 = vec![];
        enc(&mut c0, Reg::RDI, 0);
        let j = pba_isa::x86::encode::jcc_rel32(&mut c0, pba_isa::insn::Cond::E);
        pba_isa::x86::encode::patch_rel32(&mut c0, j, 0x40);
        let b0 = decode_seq(&c0, 0x1000);
        let b0_end = 0x1000 + c0.len() as u64;

        let mut c1 = vec![];
        pba_isa::x86::encode::mov_rr(&mut c1, Reg::RAX, Reg::RSI);
        let j = pba_isa::x86::encode::jmp_rel32(&mut c1);
        pba_isa::x86::encode::patch_rel32(&mut c1, j, 0x100);
        let b1 = decode_seq(&c1, 0x2000);
        let b1_end = 0x2000 + c1.len() as u64;

        let mut c2 = vec![];
        pba_isa::x86::encode::mov_rr(&mut c2, Reg::RAX, Reg::RDX);
        let b2 = decode_seq(&c2, 0x3000);
        let b2_end = 0x3000 + c2.len() as u64;

        let mut c3 = vec![];
        pba_isa::x86::encode::ret(&mut c3);
        let b3 = decode_seq(&c3, 0x4000);
        let b3_end = 0x4000 + c3.len() as u64;

        let view = VecView::new(
            0x1000,
            vec![
                (0x1000, b0_end, b0),
                (0x2000, b1_end, b1),
                (0x3000, b2_end, b2),
                (0x4000, b3_end, b3),
            ],
            vec![
                (0x1000, 0x3000, EdgeKind::CondTaken),
                (0x1000, 0x2000, EdgeKind::CondNotTaken),
                (0x2000, 0x4000, EdgeKind::Direct),
                (0x3000, 0x4000, EdgeKind::Fallthrough),
            ],
        );
        let r = liveness(&view);
        let live_in = r.live_in(0x1000);
        assert!(live_in.contains(Reg::RDI));
        assert!(live_in.contains(Reg::RSI), "used on the b1 path");
        assert!(live_in.contains(Reg::RDX), "used on the b2 path");
        // rax defined on both paths before b3's use-as-return.
        assert!(!live_in.contains(Reg::RAX));
        // b3 live-in: exit conventions.
        assert!(r.live_in(0x4000).contains(Reg::RAX));
    }

    #[test]
    fn call_clobbers_caller_saved() {
        // mov r10, rdi ; call X ; ret   — r10 dies at the call.
        let mut code = vec![];
        pba_isa::x86::encode::mov_rr(&mut code, Reg::R10, Reg::RDI);
        let c = pba_isa::x86::encode::call_rel32(&mut code);
        pba_isa::x86::encode::patch_rel32(&mut code, c, 0x500);
        pba_isa::x86::encode::ret(&mut code);
        let end = 0x1000 + code.len() as u64;
        let view = VecView::new(0x1000, vec![(0x1000, end, decode_seq(&code, 0x1000))], vec![]);
        let r = liveness(&view);
        let per = per_insn_liveness(&view, &r, 0x1000);
        // Before the call: argument registers live.
        let before_call = per[1].1;
        assert!(before_call.contains(Reg::RDI));
        // r10 (caller-saved) is not live after its definition since the
        // call kills it before any use.
        let before_mov = per[0].1;
        assert!(!before_mov.contains(Reg::R10));
    }

    #[test]
    fn loop_reaches_fixpoint() {
        // b0: mov rcx, rdi
        // b1: add rcx, rsi ; cmp rcx, 100 ; jl b1   (self loop)
        // b2: ret
        let mut c0 = vec![];
        pba_isa::x86::encode::mov_rr(&mut c0, Reg::RCX, Reg::RDI);
        let b0 = decode_seq(&c0, 0x1000);
        let b0_end = 0x1000 + c0.len() as u64;
        let mut c1 = vec![];
        pba_isa::x86::encode::alu_rr(&mut c1, pba_isa::insn::AluKind::Add, Reg::RCX, Reg::RSI);
        pba_isa::x86::encode::cmp_ri(&mut c1, Reg::RCX, 100);
        let j = pba_isa::x86::encode::jcc_rel32(&mut c1, pba_isa::insn::Cond::L);
        pba_isa::x86::encode::patch_rel32(&mut c1, j, 0);
        let b1 = decode_seq(&c1, 0x2000);
        let b1_end = 0x2000 + c1.len() as u64;
        let mut c2 = vec![];
        pba_isa::x86::encode::ret(&mut c2);
        let b2 = decode_seq(&c2, 0x3000);

        let view = VecView::new(
            0x1000,
            vec![(0x1000, b0_end, b0), (0x2000, b1_end, b1), (0x3000, 0x3001, b2)],
            vec![
                (0x1000, 0x2000, EdgeKind::Fallthrough),
                (0x2000, 0x2000, EdgeKind::CondTaken),
                (0x2000, 0x3000, EdgeKind::CondNotTaken),
            ],
        );
        let r = liveness(&view);
        // rsi live around the loop (used every iteration).
        assert!(r.live_in(0x2000).contains(Reg::RSI));
        assert!(r.live_out(0x2000).contains(Reg::RSI), "live across the back edge");
        assert!(r.live_in(0x1000).contains(Reg::RDI));
    }
}
