//! Reaching definitions + def-use chains (register-level).
//!
//! The forward companion to liveness: which definition sites can supply
//! a register's value at each point. Feature extractors and slicing
//! refinements consume the def-use chains; the analysis is the standard
//! gen/kill bit-vector problem with definitions indexed densely,
//! expressed as a [`ReachingSpec`] and solved by the generic engine
//! ([`crate::engine`]). The spec reads each block's (already decoded)
//! instructions through the borrowing [`CfgView`], and its
//! [`DataflowSpec::transfer_into`] writes the bit vector in place, so
//! the engine's fixpoint loop allocates nothing per visit.

use crate::engine::{DataflowSpec, Direction, ExecutorKind, FlowGraph};
use crate::view::CfgView;
use pba_cfg::BlockIndex;
use pba_isa::Reg;
use std::collections::HashMap;
use std::sync::Arc;

/// A definition site: instruction address + register defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Def {
    /// Address of the defining instruction.
    pub addr: u64,
    /// Register defined.
    pub reg: Reg,
}

/// Dense bitset over definition ids (the engine fact of
/// [`ReachingSpec`]). `Clone::clone_from` reuses the existing word
/// buffer, which is what lets the engine's scratch facts live for a
/// whole fixpoint run.
#[derive(Debug, PartialEq, Eq, Default)]
pub struct BitSet(Vec<u64>);

impl Clone for BitSet {
    fn clone(&self) -> BitSet {
        BitSet(self.0.clone())
    }

    fn clone_from(&mut self, source: &BitSet) {
        self.0.clone_from(&source.0);
    }
}

impl BitSet {
    fn with_len(n: usize) -> BitSet {
        BitSet(vec![0; n.div_ceil(64)])
    }

    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }

    fn clear(&mut self, i: usize) {
        self.0[i / 64] &= !(1 << (i % 64));
    }

    fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }

    fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    fn transfer(&self, gen: &BitSet, kill: &BitSet) -> BitSet {
        BitSet(
            self.0.iter().zip(&gen.0).zip(&kill.0).map(|((&inn, &g), &k)| (inn & !k) | g).collect(),
        )
    }

    /// `self = (input & !kill) | gen`, word by word into the existing
    /// buffer (resized only if the widths disagree, which a single
    /// spec's facts never do).
    fn transfer_from(&mut self, input: &BitSet, gen: &BitSet, kill: &BitSet) {
        self.0.resize(input.0.len(), 0);
        for (((o, &inn), &g), &k) in self.0.iter_mut().zip(&input.0).zip(&gen.0).zip(&kill.0) {
            *o = (inn & !k) | g;
        }
    }

    fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().enumerate().flat_map(|(w, &bits)| {
            let mut b = bits;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let i = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(w * 64 + i)
                }
            })
        })
    }
}

/// Result of the reaching-definitions analysis for one function, dense
/// over the function's block list with address-keyed accessors.
#[derive(Debug, Default)]
pub struct ReachingDefs {
    /// All definition sites, indexed by id.
    pub defs: Vec<Def>,
    def_ids: HashMap<Def, usize>,
    blocks: Arc<Vec<u64>>,
    index: Arc<BlockIndex>,
    reach_in: Vec<BitSet>,
}

impl ReachingDefs {
    /// Definitions reaching the entry of `block`.
    pub fn reaching_at_entry(&self, block: u64) -> Vec<Def> {
        self.index
            .get(block)
            .map(|i| self.reach_in[i].iter_ones().map(|d| self.defs[d]).collect())
            .unwrap_or_default()
    }

    /// Whether `def` reaches the entry of `block` (O(1) point lookup,
    /// no materialization).
    pub fn def_reaches_entry(&self, block: u64, def: Def) -> bool {
        let Some(&id) = self.def_ids.get(&def) else { return false };
        self.index.get(block).is_some_and(|i| self.reach_in[i].get(id))
    }

    /// Block addresses in the dense order of the fact vector.
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Bytes of heap owned by the definition tables and fact vectors
    /// (the shared block list and index belong to the function's graph,
    /// counted with the IR).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.defs.capacity() * size_of::<Def>()
            + self.def_ids.capacity() * (size_of::<(Def, usize)>() + 1)
            + self.reach_in.capacity() * size_of::<BitSet>()
            + self.reach_in.iter().map(|b| b.0.capacity() * size_of::<u64>()).sum::<usize>()
    }

    /// Definitions of `reg` reaching the *use* at instruction `addr`
    /// within `block` (walks the block forward applying kills).
    pub fn defs_reaching_use(
        &self,
        view: &dyn CfgView,
        block: u64,
        addr: u64,
        reg: Reg,
    ) -> Vec<Def> {
        let mut live: Vec<Def> =
            self.reaching_at_entry(block).into_iter().filter(|d| d.reg == reg).collect();
        for i in view.insns(block) {
            if i.addr >= addr {
                break;
            }
            if i.regs_written().contains(reg) {
                live.clear();
                live.push(Def { addr: i.addr, reg });
            }
        }
        live.sort_unstable();
        live
    }
}

/// Reaching definitions as a [`DataflowSpec`]: forward bit-vector
/// problem whose facts are dense [`BitSet`]s over definition ids.
pub struct ReachingSpec {
    /// All definition sites, indexed by bit position.
    defs: Vec<Def>,
    /// Reverse index: definition site → bit position.
    def_ids: HashMap<Def, usize>,
    /// Bit count (defs.len()).
    n: usize,
    /// Dense block index over the view's block list; gen/kill are keyed
    /// through it so the engine's per-visit lookups are binary searches
    /// over a flat sorted array, not hash probes.
    index: BlockIndex,
    gen: Vec<BitSet>,
    kill: Vec<BitSet>,
}

impl ReachingSpec {
    /// Index every definition site in `view` and precompute per-block
    /// gen/kill vectors. Instructions are read from the view's decoded
    /// slices — nothing is decoded here.
    pub fn build(view: &dyn CfgView) -> ReachingSpec {
        let blocks = view.blocks();

        // Index all defs.
        let mut defs: Vec<Def> = Vec::new();
        let mut def_ids: HashMap<Def, usize> = HashMap::new();
        for &b in blocks {
            for i in view.insns(b) {
                for r in i.regs_written().iter() {
                    let d = Def { addr: i.addr, reg: r };
                    let next = defs.len();
                    def_ids.entry(d).or_insert_with(|| {
                        defs.push(d);
                        next
                    });
                }
            }
        }
        let n = defs.len();

        // Per-register def id lists (for kills).
        let mut by_reg: HashMap<Reg, Vec<usize>> = HashMap::new();
        for (i, d) in defs.iter().enumerate() {
            by_reg.entry(d.reg).or_default().push(i);
        }

        // Block gen/kill, dense over the view's block list.
        let index = BlockIndex::new(blocks);
        let mut gen: Vec<BitSet> = (0..blocks.len()).map(|_| BitSet::with_len(n)).collect();
        let mut kill: Vec<BitSet> = (0..blocks.len()).map(|_| BitSet::with_len(n)).collect();
        for (bi, &b) in blocks.iter().enumerate() {
            let g = &mut gen[bi];
            let k = &mut kill[bi];
            for i in view.insns(b) {
                for r in i.regs_written().iter() {
                    // A new def of r kills all other defs of r —
                    // *including* earlier gens of r in this same block,
                    // whose gen bits are retracted so only the last def
                    // per register flows out of the block. (A historical
                    // quirk kept earlier same-block gens alive; fixed
                    // deliberately, with the oracle in
                    // tests/engine_equiv.rs updated in the same change.)
                    for &other in by_reg.get(&r).into_iter().flatten() {
                        k.set(other);
                        g.clear(other);
                    }
                    let id = def_ids[&Def { addr: i.addr, reg: r }];
                    // un-kill & gen this def.
                    k.clear(id);
                    g.set(id);
                }
            }
        }
        ReachingSpec { defs, def_ids, n, index, gen, kill }
    }
}

impl DataflowSpec for ReachingSpec {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self, _block: u64) -> BitSet {
        BitSet::with_len(self.n)
    }

    fn boundary(&self, _block: u64) -> BitSet {
        // Nothing reaches the function entry from outside.
        BitSet::with_len(self.n)
    }

    fn meet(&self, into: &mut BitSet, incoming: &BitSet) {
        into.union_with(incoming);
    }

    fn transfer(&self, block: u64, input: &BitSet) -> BitSet {
        let i = self.index.get(block).expect("spec covers every graph block");
        input.transfer(&self.gen[i], &self.kill[i])
    }

    fn transfer_into(&self, block: u64, input: &BitSet, out: &mut BitSet) {
        let i = self.index.get(block).expect("spec covers every graph block");
        out.transfer_from(input, &self.gen[i], &self.kill[i]);
    }
}

/// Run reaching definitions over one function (serial executor).
pub fn reaching_defs(view: &dyn CfgView) -> ReachingDefs {
    reaching_defs_with(view, ExecutorKind::Serial)
}

/// Run reaching definitions over one function with an explicit executor.
pub fn reaching_defs_with(view: &dyn CfgView, exec: ExecutorKind) -> ReachingDefs {
    reaching_defs_on(view, &FlowGraph::build(view), exec)
}

/// [`reaching_defs_with`] over a prebuilt [`FlowGraph`] (so whole-binary
/// drivers can share one graph — and its memoized RPO ranks — across
/// all analyses; [`crate::ir::FuncIr::graph`] is that graph).
pub fn reaching_defs_on(view: &dyn CfgView, graph: &FlowGraph, exec: ExecutorKind) -> ReachingDefs {
    let spec = ReachingSpec::build(view);
    let r = exec.run(&spec, graph);
    let (blocks, index, reach_in, _out) = r.into_dense();
    ReachingDefs { defs: spec.defs, def_ids: spec.def_ids, blocks, index, reach_in }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::VecView;
    use pba_cfg::EdgeKind;
    use pba_isa::insn::AluKind;
    use pba_isa::x86::{decode_one, encode};

    fn decode_seq(bytes: &[u8], base: u64) -> Vec<pba_isa::Insn> {
        let mut out = vec![];
        let mut at = 0usize;
        while at < bytes.len() {
            let i = decode_one(&bytes[at..], base + at as u64).unwrap();
            at += i.len as usize;
            out.push(i);
        }
        out
    }

    #[test]
    fn straightline_kills() {
        // mov rax, 1 ; mov rax, 2 ; add rbx, rax ; ret
        let mut c = vec![];
        encode::mov_ri32(&mut c, Reg::RAX, 1);
        let second_def = c.len() as u64 + 0x1000;
        encode::mov_ri32(&mut c, Reg::RAX, 2);
        let use_at = c.len() as u64 + 0x1000;
        encode::alu_rr(&mut c, AluKind::Add, Reg::RBX, Reg::RAX);
        encode::ret(&mut c);
        let end = 0x1000 + c.len() as u64;
        let view = VecView::new(0x1000, vec![(0x1000, end, decode_seq(&c, 0x1000))], vec![]);
        let rd = reaching_defs(&view);
        let reaching = rd.defs_reaching_use(&view, 0x1000, use_at, Reg::RAX);
        assert_eq!(reaching, vec![Def { addr: second_def, reg: Reg::RAX }]);
    }

    #[test]
    fn same_block_redef_retracts_earlier_gen() {
        // b0: mov rax, 1 ; mov rax, 2 ; jmp b1     b1: ret
        //
        // Only the *last* def of rax may reach b1: the earlier def is
        // killed within the block and its gen bit must be retracted too
        // (the historical quirk let both flow out).
        let mut c0 = vec![];
        encode::mov_ri32(&mut c0, Reg::RAX, 1);
        let second_def = c0.len() as u64 + 0x1000;
        encode::mov_ri32(&mut c0, Reg::RAX, 2);
        let j = encode::jmp_rel32(&mut c0);
        encode::patch_rel32(&mut c0, j, 0x1000);
        let mut c1 = vec![];
        encode::ret(&mut c1);

        let view = VecView::new(
            0x1000,
            vec![
                (0x1000, 0x1000 + c0.len() as u64, decode_seq(&c0, 0x1000)),
                (0x2000, 0x2001, decode_seq(&c1, 0x2000)),
            ],
            vec![(0x1000, 0x2000, EdgeKind::Direct)],
        );
        let rd = reaching_defs(&view);
        let at_succ: Vec<Def> =
            rd.reaching_at_entry(0x2000).into_iter().filter(|d| d.reg == Reg::RAX).collect();
        assert_eq!(
            at_succ,
            vec![Def { addr: second_def, reg: Reg::RAX }],
            "only the last same-block def reaches the successor"
        );
    }

    #[test]
    fn merge_at_join_keeps_both_defs() {
        // b0: cmp; je b2    b1: mov rax,1; jmp b3   b2: mov rax,2   b3: add rbx, rax; ret
        let mut c0 = vec![];
        encode::cmp_ri(&mut c0, Reg::RDI, 0);
        let j = encode::jcc_rel32(&mut c0, pba_isa::insn::Cond::E);
        encode::patch_rel32(&mut c0, j, 0x100);
        let mut c1 = vec![];
        let d1 = 0x2000u64;
        encode::mov_ri32(&mut c1, Reg::RAX, 1);
        let j = encode::jmp_rel32(&mut c1);
        encode::patch_rel32(&mut c1, j, 0x200);
        let mut c2 = vec![];
        let d2 = 0x3000u64;
        encode::mov_ri32(&mut c2, Reg::RAX, 2);
        let mut c3 = vec![];
        encode::alu_rr(&mut c3, AluKind::Add, Reg::RBX, Reg::RAX);
        encode::ret(&mut c3);

        let view = VecView::new(
            0x1000,
            vec![
                (0x1000, 0x1000 + c0.len() as u64, decode_seq(&c0, 0x1000)),
                (0x2000, 0x2000 + c1.len() as u64, decode_seq(&c1, 0x2000)),
                (0x3000, 0x3000 + c2.len() as u64, decode_seq(&c2, 0x3000)),
                (0x4000, 0x4000 + c3.len() as u64, decode_seq(&c3, 0x4000)),
            ],
            vec![
                (0x1000, 0x2000, EdgeKind::CondNotTaken),
                (0x1000, 0x3000, EdgeKind::CondTaken),
                (0x2000, 0x4000, EdgeKind::Direct),
                (0x3000, 0x4000, EdgeKind::Fallthrough),
            ],
        );
        let rd = reaching_defs(&view);
        let at_join: Vec<Def> =
            rd.reaching_at_entry(0x4000).into_iter().filter(|d| d.reg == Reg::RAX).collect();
        assert_eq!(at_join.len(), 2, "both definitions reach the join: {at_join:?}");
        assert!(at_join.contains(&Def { addr: d1, reg: Reg::RAX }));
        assert!(at_join.contains(&Def { addr: d2, reg: Reg::RAX }));
    }

    #[test]
    fn loop_defs_reach_around_back_edge() {
        // b0: mov rcx, 5    b1: sub rcx,1; cmp; jg b1    b2: ret
        let mut c0 = vec![];
        encode::mov_ri32(&mut c0, Reg::RCX, 5);
        let mut c1 = vec![];
        let loop_def = 0x2000u64;
        encode::alu_ri(&mut c1, AluKind::Sub, Reg::RCX, 1);
        encode::cmp_ri(&mut c1, Reg::RCX, 0);
        let j = encode::jcc_rel32(&mut c1, pba_isa::insn::Cond::G);
        encode::patch_rel32(&mut c1, j, 0);
        let mut c2 = vec![];
        encode::ret(&mut c2);

        let view = VecView::new(
            0x1000,
            vec![
                (0x1000, 0x1000 + c0.len() as u64, decode_seq(&c0, 0x1000)),
                (0x2000, 0x2000 + c1.len() as u64, decode_seq(&c1, 0x2000)),
                (0x3000, 0x3001, decode_seq(&c2, 0x3000)),
            ],
            vec![
                (0x1000, 0x2000, EdgeKind::Fallthrough),
                (0x2000, 0x2000, EdgeKind::CondTaken),
                (0x2000, 0x3000, EdgeKind::CondNotTaken),
            ],
        );
        let rd = reaching_defs(&view);
        let at_loop: Vec<Def> =
            rd.reaching_at_entry(0x2000).into_iter().filter(|d| d.reg == Reg::RCX).collect();
        // Both the init and the in-loop redefinition reach the header.
        assert_eq!(at_loop.len(), 2, "{at_loop:?}");
        assert!(at_loop.iter().any(|d| d.addr == 0x1000));
        assert!(at_loop.iter().any(|d| d.addr == loop_def));
    }

    #[test]
    fn bitset_clone_from_reuses_and_matches() {
        let mut a = BitSet::with_len(130);
        a.set(0);
        a.set(129);
        let mut b = BitSet::with_len(130);
        b.clone_from(&a);
        assert_eq!(a, b);
        // In-place transfer equals the allocating one.
        let mut gen = BitSet::with_len(130);
        gen.set(64);
        let mut kill = BitSet::with_len(130);
        kill.set(129);
        let fresh = a.transfer(&gen, &kill);
        let mut inplace = BitSet::with_len(130);
        inplace.set(77); // stale garbage that must be overwritten
        inplace.transfer_from(&a, &gen, &kill);
        assert_eq!(fresh, inplace);
        assert!(inplace.get(64) && inplace.get(0) && !inplace.get(129) && !inplace.get(77));
    }
}
