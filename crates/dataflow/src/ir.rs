//! The decode-once analysis IR: per-function instruction arenas plus
//! everything every client analysis re-derived per run before.
//!
//! The paper's premise is that the finalized CFG is a read-only artifact
//! every analysis shares. In practice the *CFG* was shared but the
//! expensive derivatives were not: each analysis re-decoded block bytes,
//! rebuilt the dense [`FlowGraph`], and re-ranked it in reverse
//! postorder. [`FuncIr`] is those artifacts computed **once** per
//! function — one decoded-instruction arena (`Vec<Insn>` + per-block
//! index ranges), the intra-procedural adjacency, the graph with its
//! memoized RPO ranks, and per-block summary bits (terminator kind,
//! `ends_in_call`) — behind the borrowing [`CfgView`] API, so liveness,
//! reaching defs, stack analysis, slicing, hpcstruct's query phases and
//! BinFeat's extractors all read the same slices. [`BinaryIr`] is the
//! whole-binary map of them, decoding each unique block exactly once
//! (shared blocks are copied into each owning function's arena, not
//! re-decoded); `pba::Session::ir()` memoizes it so *decode-once* is a
//! structural invariant of the session, not per-consumer luck —
//! measured by `pba-bench --bin ir` against
//! [`pba_cfg::CodeRegion::decode_count`].

use crate::engine::FlowGraph;
use crate::view::CfgView;
use pba_cfg::{Cfg, EdgeKind, Function};
use pba_isa::{ControlFlow, Insn};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Precomputed facts about one block, answered without touching the
/// arena (let alone re-decoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSummary {
    /// Control-flow category of the block's last instruction
    /// (`None` for an empty block).
    pub terminator: Option<ControlFlow>,
    /// Whether the block ends in a (direct or indirect) call — the bit
    /// liveness consults at call boundaries.
    pub ends_in_call: bool,
}

impl BlockSummary {
    fn of(insns: &[Insn]) -> BlockSummary {
        let terminator = insns.last().map(|i| i.control_flow());
        let ends_in_call =
            matches!(terminator, Some(ControlFlow::Call { .. }) | Some(ControlFlow::IndirectCall));
        BlockSummary { terminator, ends_in_call }
    }
}

/// One function's analysis IR: decoded instruction arena, byte ranges,
/// intra-procedural adjacency, block summaries, and the shared
/// [`FlowGraph`] (dense indices + memoized RPO ranks). Built once,
/// borrowed everywhere — implements [`CfgView`], so every analysis in
/// this crate runs over it without decoding or allocating per query.
pub struct FuncIr {
    entry: u64,
    /// `[start, end)` byte range per block, dense order.
    ranges: Vec<(u64, u64)>,
    /// Each block's decoded instructions, dense order. The handles are
    /// shared: a block owned by several functions (shared code) stores
    /// its instructions once in the binary, every owner holding the same
    /// `Arc` — borrows served through [`CfgView::insns`] are unchanged.
    block_insns: Vec<Arc<[Insn]>>,
    /// Total instructions across all blocks (cached sum).
    insn_total: usize,
    /// Intra-procedural successors per block, dense order.
    succs: Vec<Vec<(u64, EdgeKind)>>,
    /// Intra-procedural predecessors per block, dense order.
    preds: Vec<Vec<(u64, EdgeKind)>>,
    /// Per-block summary bits, dense order.
    summaries: Vec<BlockSummary>,
    /// The dense graph (owns the block list and address index).
    graph: FlowGraph,
}

impl FuncIr {
    /// Build the IR of `func` within `cfg`, decoding each member block
    /// exactly once.
    pub fn build(cfg: &Cfg, func: &Function) -> FuncIr {
        FuncIr::assemble(cfg, func, |start, end| cfg.code.insns(start, end).into())
    }

    /// Build the IR from pre-decoded block bodies (`insns_of(start, end)`
    /// returns the block's instruction handle — [`BinaryIr::build`] uses
    /// this to decode shared blocks once for the whole binary and hand
    /// every owning function the same `Arc`).
    fn assemble(cfg: &Cfg, func: &Function, insns_of: impl Fn(u64, u64) -> Arc<[Insn]>) -> FuncIr {
        let mut blocks = func.blocks.clone();
        blocks.sort_unstable();
        let members: std::collections::HashSet<u64> = blocks.iter().copied().collect();

        let mut ranges = Vec::with_capacity(blocks.len());
        let mut block_insns: Vec<Arc<[Insn]>> = Vec::with_capacity(blocks.len());
        let mut insn_total = 0usize;
        let mut summaries = Vec::with_capacity(blocks.len());
        let mut succs = Vec::with_capacity(blocks.len());
        let mut preds = Vec::with_capacity(blocks.len());
        let mut edges: Vec<(u64, u64, EdgeKind)> = Vec::new();
        for &b in &blocks {
            let (start, end) = match cfg.blocks.get(&b) {
                Some(blk) => (blk.start, blk.end),
                None => (b, b),
            };
            ranges.push((start, end));
            let insns = insns_of(start, end);
            summaries.push(BlockSummary::of(&insns));
            insn_total += insns.len();
            block_insns.push(insns);
            let s: Vec<(u64, EdgeKind)> = cfg
                .out_edges(b)
                .iter()
                .filter(|e| !e.kind.is_interprocedural() && members.contains(&e.dst))
                .map(|e| (e.dst, e.kind))
                .collect();
            edges.extend(s.iter().map(|&(d, k)| (b, d, k)));
            succs.push(s);
            preds.push(
                cfg.in_edges(b)
                    .iter()
                    .filter(|e| !e.kind.is_interprocedural() && members.contains(&e.src))
                    .map(|e| (e.src, e.kind))
                    .collect(),
            );
        }
        let graph = FlowGraph::from_parts(blocks, func.entry, &edges);
        FuncIr {
            entry: func.entry,
            ranges,
            block_insns,
            insn_total,
            succs,
            preds,
            summaries,
            graph,
        }
    }

    /// Capture any [`CfgView`] as an owned IR (instructions copied from
    /// the view's slices — no re-decode when the view already owns
    /// decoded blocks).
    pub fn from_view(view: &dyn CfgView) -> FuncIr {
        let mut blocks: Vec<u64> = view.blocks().to_vec();
        blocks.sort_unstable();
        let mut ranges = Vec::with_capacity(blocks.len());
        let mut block_insns: Vec<Arc<[Insn]>> = Vec::with_capacity(blocks.len());
        let mut insn_total = 0usize;
        let mut summaries = Vec::with_capacity(blocks.len());
        let mut succs = Vec::with_capacity(blocks.len());
        let mut preds = Vec::with_capacity(blocks.len());
        let mut edges: Vec<(u64, u64, EdgeKind)> = Vec::new();
        for &b in &blocks {
            ranges.push(view.block_range(b));
            let insns = view.insns(b);
            summaries.push(BlockSummary::of(insns));
            insn_total += insns.len();
            block_insns.push(Arc::from(insns));
            let s = view.succ_edges(b).to_vec();
            edges.extend(s.iter().map(|&(d, k)| (b, d, k)));
            succs.push(s);
            preds.push(view.pred_edges(b).to_vec());
        }
        let graph = FlowGraph::from_parts(blocks, view.entry(), &edges);
        FuncIr {
            entry: view.entry(),
            ranges,
            block_insns,
            insn_total,
            succs,
            preds,
            summaries,
            graph,
        }
    }

    /// Function entry block address.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// Member block addresses, ascending (the dense order of every
    /// per-block vector here and of the graph).
    pub fn blocks(&self) -> &[u64] {
        &self.graph.blocks
    }

    /// The dense graph with its memoized RPO ranks — pass this to the
    /// `_on` analysis entry points so all fixpoints share one ranking.
    pub fn graph(&self) -> &FlowGraph {
        &self.graph
    }

    /// The summary bits of `block`, if it is a member.
    pub fn summary(&self, block: u64) -> Option<&BlockSummary> {
        self.graph.index_of(block).map(|i| &self.summaries[i])
    }

    /// Total decoded instructions across the function's blocks.
    pub fn insn_count(&self) -> usize {
        self.insn_total
    }

    /// The shared instruction handle of `block`, if it is a member
    /// (what [`BinaryIr`]'s storage accounting and the sharing tests
    /// inspect; analyses use the borrowing [`CfgView::insns`]).
    pub fn block_insns(&self, block: u64) -> Option<&Arc<[Insn]>> {
        self.graph.index_of(block).map(|i| &self.block_insns[i])
    }

    /// Estimated heap bytes of the function's structure — adjacency,
    /// ranges, summaries, graph — *excluding* instruction storage, which
    /// is shared and accounted once per unique block by
    /// [`BinaryIr::heap_bytes`].
    pub fn struct_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let edges: usize = self
            .succs
            .iter()
            .chain(self.preds.iter())
            .map(|v| {
                size_of::<Vec<(u64, EdgeKind)>>() + v.capacity() * size_of::<(u64, EdgeKind)>()
            })
            .sum();
        self.ranges.capacity() * size_of::<(u64, u64)>()
            + self.block_insns.capacity() * size_of::<Arc<[Insn]>>()
            + self.summaries.capacity() * size_of::<BlockSummary>()
            + edges
            + self.graph.heap_bytes()
    }
}

impl CfgView for FuncIr {
    fn entry(&self) -> u64 {
        self.entry
    }

    fn blocks(&self) -> &[u64] {
        &self.graph.blocks
    }

    fn block_range(&self, block: u64) -> (u64, u64) {
        self.graph.index_of(block).map(|i| self.ranges[i]).unwrap_or((block, block))
    }

    fn succ_edges(&self, block: u64) -> &[(u64, EdgeKind)] {
        self.graph.index_of(block).map(|i| self.succs[i].as_slice()).unwrap_or(&[])
    }

    fn pred_edges(&self, block: u64) -> &[(u64, EdgeKind)] {
        self.graph.index_of(block).map(|i| self.preds[i].as_slice()).unwrap_or(&[])
    }

    fn insns(&self, block: u64) -> &[Insn] {
        match self.graph.index_of(block) {
            Some(i) => &self.block_insns[i],
            None => &[],
        }
    }

    fn ends_in_call(&self, block: u64) -> bool {
        self.summary(block).map(|s| s.ends_in_call).unwrap_or(false)
    }
}

/// The whole-binary analysis IR: one [`FuncIr`] per function, built in
/// parallel, with each unique block's bytes decoded **exactly once**
/// and stored **exactly once** — functions sharing a block hold the
/// same `Arc<[Insn]>` handle, so shared code costs the binary one copy
/// no matter how many functions own it. This is the artifact
/// `pba::Session::ir()` memoizes — build it once, run every analysis
/// over borrowed slices.
pub struct BinaryIr {
    funcs: HashMap<u64, FuncIr>,
    insn_total: usize,
    unique_block_insns: usize,
}

impl BinaryIr {
    /// Build the IR of every function of `cfg` on a rayon pool of
    /// `threads` workers (0 = all available).
    pub fn build(cfg: &Cfg, threads: usize) -> BinaryIr {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("ir pool");
        // Decode every unique block once, in parallel, into the shared
        // storage handles.
        let block_list: Vec<(u64, u64)> = cfg.blocks.values().map(|b| (b.start, b.end)).collect();
        let decoded_vec: Vec<(u64, Arc<[Insn]>)> = pool.install(|| {
            block_list
                .par_iter()
                .map(|&(start, end)| (start, Arc::from(cfg.code.insns(start, end))))
                .collect()
        });
        let unique_block_insns = decoded_vec.iter().map(|(_, v)| v.len()).sum();
        let decoded: HashMap<u64, Arc<[Insn]>> = decoded_vec.into_iter().collect();

        // Assemble per-function IRs in parallel, largest first. Owners
        // of a shared block clone the *handle*, not the instructions —
        // once `decoded` drops below, each block's strong count is
        // exactly its number of owning functions.
        let mut funcs: Vec<&Function> = cfg.functions.values().collect();
        funcs.sort_by_key(|f| std::cmp::Reverse(f.blocks.len()));
        let irs: Vec<(u64, FuncIr)> = pool.install(|| {
            funcs
                .par_iter()
                .map(|f| {
                    let ir = FuncIr::assemble(cfg, f, |start, _end| {
                        decoded.get(&start).cloned().unwrap_or_else(|| Arc::from(Vec::new()))
                    });
                    (f.entry, ir)
                })
                .collect()
        });
        let insn_total = irs.iter().map(|(_, ir)| ir.insn_count()).sum();
        BinaryIr { funcs: irs.into_iter().collect(), insn_total, unique_block_insns }
    }

    /// The IR of the function entered at `entry`.
    pub fn func(&self, entry: u64) -> Option<&FuncIr> {
        self.funcs.get(&entry)
    }

    /// Every function's IR (unordered).
    pub fn funcs(&self) -> impl Iterator<Item = &FuncIr> {
        self.funcs.values()
    }

    /// Function count.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// True when the binary has no functions.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Total arena instructions across all functions (shared blocks
    /// counted once per owning function).
    pub fn insn_count(&self) -> usize {
        self.insn_total
    }

    /// Instructions in the binary's unique blocks — exactly how many
    /// decodes building this IR performed (the decode-once invariant
    /// `pba-bench --bin ir` and the session tests assert).
    pub fn unique_block_insn_count(&self) -> usize {
        self.unique_block_insns
    }

    /// Instruction-storage bytes actually resident: each unique block's
    /// `Arc<[Insn]>` counted once, however many functions share it.
    pub fn shared_insn_bytes(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut bytes = 0usize;
        for f in self.funcs.values() {
            for b in f.blocks() {
                if let Some(handle) = f.block_insns(*b) {
                    if seen.insert(Arc::as_ptr(handle)) {
                        bytes += handle.len() * std::mem::size_of::<Insn>();
                    }
                }
            }
        }
        bytes
    }

    /// Instruction-storage bytes a per-function *copied* layout would
    /// hold (every owner paying for its own copy of shared blocks) —
    /// the baseline `pba-bench --bin mem` compares against.
    pub fn copied_insn_bytes(&self) -> usize {
        self.insn_total * std::mem::size_of::<Insn>()
    }

    /// Estimated total heap bytes: unique instruction storage plus every
    /// function's structural vectors (the session's resident-size
    /// contribution of this artifact).
    pub fn heap_bytes(&self) -> usize {
        self.shared_insn_bytes() + self.funcs.values().map(FuncIr::struct_heap_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::VecView;
    use pba_isa::x86::{decode_one, encode};
    use pba_isa::Reg;

    fn decode_seq(bytes: &[u8], base: u64) -> Vec<Insn> {
        let mut out = vec![];
        let mut at = 0usize;
        while at < bytes.len() {
            let i = decode_one(&bytes[at..], base + at as u64).unwrap();
            at += i.len as usize;
            out.push(i);
        }
        out
    }

    #[test]
    fn from_view_preserves_shape_and_summaries() {
        // b0: mov rax, rdi ; call X   b1: ret
        let mut c0 = vec![];
        encode::mov_rr(&mut c0, Reg::RAX, Reg::RDI);
        let c = encode::call_rel32(&mut c0);
        encode::patch_rel32(&mut c0, c, 0x500);
        let b0 = decode_seq(&c0, 0x1000);
        let b0_end = 0x1000 + c0.len() as u64;
        let mut c1 = vec![];
        encode::ret(&mut c1);
        let b1 = decode_seq(&c1, 0x2000);

        let view = VecView::new(
            0x1000,
            vec![(0x1000, b0_end, b0.clone()), (0x2000, 0x2001, b1.clone())],
            vec![(0x1000, 0x2000, EdgeKind::CallFallthrough)],
        );
        let ir = FuncIr::from_view(&view);
        assert_eq!(ir.blocks(), &[0x1000, 0x2000]);
        assert_eq!(ir.insns(0x1000), b0.as_slice());
        assert_eq!(ir.insns(0x2000), b1.as_slice());
        assert_eq!(ir.insn_count(), 3);
        assert!(ir.ends_in_call(0x1000), "summary bit, no decode");
        assert!(!ir.ends_in_call(0x2000));
        assert_eq!(ir.summary(0x2000).unwrap().terminator, Some(ControlFlow::Ret));
        assert_eq!(ir.succ_edges(0x1000), &[(0x2000, EdgeKind::CallFallthrough)]);
        assert_eq!(ir.pred_edges(0x2000), &[(0x1000, EdgeKind::CallFallthrough)]);
        assert_eq!(ir.block_range(0x1000), (0x1000, b0_end));
        assert_eq!(ir.insns(0xdead), &[] as &[Insn], "non-member is empty, not a panic");
    }
}
