//! Intra-procedural data-flow analyses (Dyninst DataflowAPI analogue).
//!
//! Three consumers in the paper's applications (Section 7.1):
//!
//! * **jump-table analysis** (AC within CFG construction) — backward
//!   slicing from an indirect jump plus symbolic evaluation of the target
//!   expression, the only place Dyninst lifts instructions to an IR.
//!   [`slice::analyze_indirect_jump`] reproduces that: it walks
//!   definitions backward along control-flow paths, substitutes them into
//!   a symbolic [`expr::Expr`], recognizes the absolute and PC-relative
//!   table dispatch patterns, and extracts the `cmp`+`ja` bound guarding
//!   each path. Results are *unioned over paths* — the paper's Section
//!   5.3 fix that makes `O_IEC` monotonic at the cost of possible
//!   over-approximation (cleaned up during finalization).
//!
//!   Since the engine refactor the backward walk is itself a
//!   [`engine::DataflowSpec`] ([`slice::SliceSpec`]): the lattice fact is
//!   a bounded, ordered set of per-path states `(Expr, Option<(Reg,
//!   bound)>, depth)` at each block boundary, the meet is set union
//!   (union-over-paths *is* the join), the block transfer substitutes
//!   definitions backward through the block, and the engine's
//!   edge-kind-aware [`engine::DataflowSpec::edge_transfer`] hook
//!   attaches guard bounds from `cmp`+`jcc` terminators according to
//!   which branch side the path arrived through. Sets exceeding
//!   [`slice::MAX_PATHS`] widen to the classified forms they already
//!   contain (guard-bounded forms kept preferentially, up to the hard
//!   cap) — widening gives up on still-ambiguous paths, not on proven
//!   dispatch patterns. Widening is sticky per block, so its one
//!   non-monotone (output-shrinking) step happens at most once per
//!   block, and path states stop crossing edges at
//!   [`slice::MAX_DEPTH`]; together these make the fixpoint terminate
//!   unconditionally.
//! * **register liveness** (AC6) — classic backward may-analysis over
//!   [`pba_isa::RegSet`] bit masks; BinFeat's data-flow features are live
//!   register counts.
//! * **stack-height analysis** — forward analysis of the stack pointer
//!   relative to function entry; the tail-call heuristic ("stack frame
//!   tear down before the branch") consults it.
//!
//! All analyses run over the borrowing [`view::CfgView`] trait so they
//! work both on finalized [`pba_cfg::Cfg`] functions and on the
//! parser's in-flight function snapshots — and every view hands out
//! references into storage it already owns, so no analysis decodes or
//! allocates per query.
//!
//! ## The decode-once IR and the memory plane
//!
//! [`ir::FuncIr`] is the per-function artifact every analysis shares:
//! per-block decoded-instruction arenas, the intra-procedural
//! adjacency, the [`engine::FlowGraph`] with memoized RPO ranks, and
//! per-block summary bits (`ends_in_call`, terminator kind).
//! [`ir::BinaryIr`] maps the whole binary, decoding each unique block
//! exactly once — and *storing* it exactly once: each unique block is
//! one `Arc<[Insn]>`, and functions sharing a block (error paths,
//! outlined `.cold` fragments) hold handles to the same storage, so a
//! resident session pins what its unique data costs
//! ([`ir::BinaryIr::shared_insn_bytes`] vs
//! [`ir::BinaryIr::copied_insn_bytes`]; `pba-bench --bin mem` asserts
//! the difference). Downstream, the analyses are dense end-to-end:
//! every spec and result keys per-block facts by the graph's
//! `pba_cfg::BlockIndex` rank into plain `Vec`s — the addr-keyed
//! `HashMap`s survive only as compat accessors at the public seams.
//! `pba::Session::ir()` memoizes the `BinaryIr` so decode-once is a
//! structural invariant rather than per-consumer luck, and each
//! artifact's `heap_bytes()` feeds the session's `resident_bytes`
//! estimate.
//!
//! ## The engine
//!
//! The fixpoint machinery itself lives in [`engine`]: analyses describe
//! themselves as a [`engine::DataflowSpec`] (direction, lattice bottom,
//! boundary fact, meet, block transfer) and an executor drives the
//! worklist — [`engine::SerialExecutor`] with a reverse-postorder
//! priority queue, [`engine::ParallelExecutor`] with a round-based
//! rayon worklist, or [`engine::AsyncExecutor`] with a barrier-free
//! per-block worklist on work-stealing deques (stale reads tolerated by
//! monotonicity, torn reads prevented by `pba-concurrent`'s striped
//! fact slots). Monotone specs over finite lattices have a unique
//! least fixpoint, so the three executors return identical results by
//! construction (property-tested in `tests/engine_equiv.rs`). Liveness,
//! reaching definitions and stack height are all spec'd this way;
//! [`engine::run_all`] fans all three across the functions of a
//! finalized CFG on a sized rayon pool — the paper's "parallel analysis
//! over a read-only CFG" phase.

pub mod engine;
pub mod expr;
pub mod ir;
pub mod liveness;
pub mod reaching;
pub mod slice;
pub mod stack;
pub mod view;

pub use engine::{
    auto_block_threshold, run_all, run_all_ir, run_all_with, run_per_function, run_per_function_ir,
    AsyncExecutor, DataflowExecutor, DataflowResults, DataflowSpec, Direction, ExecutorKind,
    FlowGraph, FuncAnalyses, ParallelExecutor, SerialExecutor, AUTO_BLOCK_THRESHOLD,
};
pub use expr::Expr;
pub use ir::{BinaryIr, BlockSummary, FuncIr};
pub use liveness::{liveness, liveness_on, liveness_with, LivenessResult};
pub use reaching::{reaching_defs, reaching_defs_on, reaching_defs_with, Def, ReachingDefs};
pub use slice::{
    analyze_indirect_jump, collect_indirect_jumps, slice_indirect_jump, slice_indirect_jump_with,
    JumpTableForm, PathFact, PathSet, PathState, SliceOutcome, SliceSpec,
};
pub use stack::{
    stack_heights, stack_heights_and_extent, stack_heights_and_extent_on, stack_heights_on,
    stack_heights_with, Height, StackResult,
};
pub use view::{CfgView, VecView};
