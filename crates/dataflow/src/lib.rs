//! Intra-procedural data-flow analyses (Dyninst DataflowAPI analogue).
//!
//! Three consumers in the paper's applications (Section 7.1):
//!
//! * **jump-table analysis** (AC within CFG construction) — backward
//!   slicing from an indirect jump plus symbolic evaluation of the target
//!   expression, the only place Dyninst lifts instructions to an IR.
//!   [`slice::analyze_indirect_jump`] reproduces that: it walks
//!   definitions backward along control-flow paths, substitutes them into
//!   a symbolic [`expr::Expr`], recognizes the absolute and PC-relative
//!   table dispatch patterns, and extracts the `cmp`+`ja` bound guarding
//!   each path. Results are *unioned over paths* — the paper's Section
//!   5.3 fix that makes `O_IEC` monotonic at the cost of possible
//!   over-approximation (cleaned up during finalization).
//! * **register liveness** (AC6) — classic backward may-analysis over
//!   [`pba_isa::RegSet`] bit masks; BinFeat's data-flow features are live
//!   register counts.
//! * **stack-height analysis** — forward analysis of the stack pointer
//!   relative to function entry; the tail-call heuristic ("stack frame
//!   tear down before the branch") consults it.
//!
//! All analyses run over the [`view::CfgView`] trait so they work both on
//! finalized [`pba_cfg::Cfg`] functions and on the parser's in-flight
//! function snapshots.

pub mod expr;
pub mod liveness;
pub mod reaching;
pub mod slice;
pub mod stack;
pub mod view;

pub use expr::Expr;
pub use liveness::{liveness, LivenessResult};
pub use reaching::{reaching_defs, Def, ReachingDefs};
pub use slice::{analyze_indirect_jump, JumpTableForm, PathFact};
pub use stack::{stack_heights, Height, StackResult};
pub use view::{CfgView, FuncView};
