//! Backward slicing + symbolic evaluation of indirect-jump targets,
//! expressed as a [`DataflowSpec`] over the generic engine.
//!
//! From the indirect jump, definitions are walked backward — first
//! within the jump's block, then across intra-procedural predecessor
//! edges — substituting each definition into the target expression.
//! Along the way, `cmp index, N` + conditional-branch facts that bound
//! the index on a path are collected via the engine's edge-kind-aware
//! [`DataflowSpec::edge_transfer`] hook.
//!
//! The lattice fact ([`PathSet`]) is a bounded set of per-path states
//! `(Expr, Option<(Reg, u64)>, depth)`; the meet is set union, so the
//! fixpoint *is* the paper's union-over-paths ("taking the union of the
//! targets discovered along different paths, essentially ignoring
//! instructions or path conditions that fail analysis", Section 5.3). A
//! path whose expression degenerates to `Top` contributes nothing
//! instead of failing the whole analysis, and a set exceeding
//! [`MAX_PATHS`] widens to the classified forms it already proved
//! (bounded forms kept preferentially, up to the hard cap). Widening is
//! *sticky per block* — once a block widens it keeps widening — so the
//! single output-shrinking (non-monotone) step happens at most once per
//! block and the fixpoint cannot oscillate; combined with states dying
//! at [`MAX_DEPTH`] edge crossings, termination is unconditional.
//!
//! [`analyze_indirect_jump`] is a thin wrapper that builds the
//! [`SliceSpec`], runs it under the [`crate::engine::SerialExecutor`]
//! (see [`slice_indirect_jump_with`] for an explicit executor — the
//! spec is executor-agnostic), and reads the per-path facts back out
//! of the block boundaries.

use crate::engine::{DataflowResults, DataflowSpec, Direction, FlowGraph};
use crate::expr::Expr;
use crate::view::CfgView;
use pba_cfg::EdgeKind;
use pba_isa::{insn::AluKind, insn::Cond, insn::ShiftKind, Insn, Op, Place, Reg, Value};
use std::collections::{BTreeSet, HashMap};

/// Recognized jump-table dispatch forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JumpTableForm {
    /// `target = load8(table + index*scale)` — absolute pointer table.
    Absolute {
        /// Table base address.
        table: u64,
        /// Entry stride.
        scale: u8,
        /// Index register.
        index: Reg,
    },
    /// `target = base + sext(load_w(table + index*scale))` — the
    /// PIC-style relative table GCC emits.
    Relative {
        /// Table base address.
        table: u64,
        /// Value added to each (sign-extended) entry.
        base: u64,
        /// Entry stride.
        scale: u8,
        /// Entry width in bytes.
        width: u8,
        /// Index register.
        index: Reg,
    },
}

impl JumpTableForm {
    /// The index register of the form.
    pub fn index(&self) -> Reg {
        match self {
            JumpTableForm::Absolute { index, .. } | JumpTableForm::Relative { index, .. } => *index,
        }
    }

    /// Table base address.
    pub fn table(&self) -> u64 {
        match self {
            JumpTableForm::Absolute { table, .. } | JumpTableForm::Relative { table, .. } => *table,
        }
    }

    /// Entry stride in bytes.
    pub fn stride(&self) -> u8 {
        match self {
            JumpTableForm::Absolute { scale, .. } | JumpTableForm::Relative { scale, .. } => *scale,
        }
    }
}

/// What one backward path learned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathFact {
    /// The recognized table form, if the expression matched one.
    pub form: Option<JumpTableForm>,
    /// Exclusive upper bound on the index register (entry count), if a
    /// guarding comparison was found on this path.
    pub bound: Option<u64>,
}

/// Apply the reverse transfer of one instruction to the wanted
/// expression. Returns the updated expression.
fn reverse_transfer(i: &Insn, wanted: Expr) -> Expr {
    let written = i.regs_written();
    // Fast reject: instruction doesn't define anything we track.
    if written.intersect(wanted.free_regs()).is_empty() {
        return wanted;
    }
    match i.op {
        Op::Mov { dst: Place::Reg(r), src, width, sign_extend } => {
            let v = match src {
                Value::Reg(s) => Expr::Reg(s),
                Value::Imm(imm) => Expr::Const(imm as u64),
                Value::Mem(m, w) => Expr::Load {
                    width: w,
                    sext: sign_extend && width == 4,
                    addr: Box::new(Expr::of_mem(&m)),
                },
            };
            wanted.subst(r, &v)
        }
        Op::Lea { dst, mem } => wanted.subst(dst, &Expr::of_mem(&mem)),
        Op::Alu { kind, dst: Place::Reg(r), src, .. } => {
            let old = Expr::Reg(r);
            let v = match (kind, &src) {
                (AluKind::Xor, Value::Reg(s)) if *s == r => Expr::Const(0),
                (AluKind::Add, _) => {
                    Expr::Add(Box::new(old), Box::new(Expr::of_value(&src, 8, false)))
                }
                (AluKind::Sub, Value::Imm(n)) => {
                    Expr::Add(Box::new(old), Box::new(Expr::Const((-n) as u64)))
                }
                // inc/dec are add/sub 1 as far as the value goes (their
                // difference — not writing CF — matters to the guard
                // analysis, not to the symbolic walk).
                (AluKind::Inc, _) => Expr::Add(Box::new(old), Box::new(Expr::Const(1))),
                (AluKind::Dec, _) => Expr::Add(Box::new(old), Box::new(Expr::Const(u64::MAX))),
                // Masking (`and idx, N-1`) only narrows the index range;
                // treating it as identity over-approximates the target
                // set, which union-over-paths tolerates and finalization
                // clamps (the paper's Section 5.3/5.4 pipeline).
                (AluKind::And, Value::Imm(n)) if *n >= 0 => old,
                _ => Expr::Top,
            };
            wanted.subst(r, &v)
        }
        Op::Shift { kind: ShiftKind::Shl, dst: Place::Reg(r), amount: Value::Imm(k), .. }
            if (0..16).contains(&k) =>
        {
            wanted.subst(r, &Expr::Mul(Box::new(Expr::Reg(r)), 1u64 << k))
        }
        _ => {
            // Any other write to a tracked register loses it.
            let mut w = wanted;
            for r in written.iter() {
                if r.is_gpr() {
                    w = w.subst(r, &Expr::Top);
                }
            }
            w
        }
    }
}

/// Extract a bound from a predecessor's terminator: `cmp r, N` followed
/// by a conditional branch whose `kind`-side edge we arrived through.
///
/// The `cmp` need not be adjacent to the `jcc`: the scan walks back
/// over any instruction that does not write a flag the condition reads
/// ([`Insn::flags_written`] vs [`Cond::flags_read`]) — so a `mov`, a
/// `lea`, or an `inc`/`dec` (no CF write) between a `cmp` and the
/// CF-consuming `jb`/`jae` keeps the bound, while anything genuinely
/// redefining a consumed flag (including unmodeled instructions, which
/// conservatively write all flags) stops the scan.
fn bound_from_pred(
    insns: &[Insn],
    edge_kind: EdgeKind,
    tracked: pba_isa::RegSet,
) -> Option<(Reg, u64)> {
    let term = insns.last()?;
    let Op::Jcc { cond, .. } = term.op else { return None };
    // Find the instruction that last defined the flags the branch
    // consumes; it must be the guarding compare.
    let consumed = cond.flags_read();
    let cmp = insns.iter().rev().skip(1).find(|i| i.flags_written().intersects(consumed))?;
    let Op::Cmp { a: Value::Reg(r), b: Value::Imm(n), .. } = cmp.op else { return None };
    if !tracked.contains(r) || n < 0 {
        return None;
    }
    let n = n as u64;
    // Which side of the branch leads to the jump table?
    let via_taken = edge_kind == EdgeKind::CondTaken;
    let bound = match (cond, via_taken) {
        // cmp r, N ; ja default  → table side is fall-through: r <= N.
        (Cond::A, false) => Some(n + 1),
        // cmp r, N ; jae default → fall-through: r < N.
        (Cond::Ae, false) => Some(n),
        // cmp r, N ; jbe table   → taken side: r <= N.
        (Cond::Be, true) => Some(n + 1),
        // cmp r, N ; jb table    → taken side: r < N.
        (Cond::B, true) => Some(n),
        _ => None,
    }?;
    Some((r, bound))
}

/// Try to match the simplified expression against the known dispatch
/// forms.
fn classify(e: &Expr) -> Option<JumpTableForm> {
    fn match_table_addr(addr: &Expr) -> Option<(u64, Reg, u8)> {
        let (atoms, konst) = addr.as_sum();
        let mut index: Option<(Reg, u8)> = None;
        for a in atoms {
            match a {
                Expr::Reg(r) if index.is_none() => index = Some((r, 1)),
                Expr::Mul(inner, k) => match (*inner, index) {
                    (Expr::Reg(r), None) if k <= 8 => index = Some((r, k as u8)),
                    _ => return None,
                },
                _ => return None,
            }
        }
        let (r, s) = index?;
        Some((konst, r, s))
    }

    let e = e.simplify();
    // Absolute: load8(table + idx*scale).
    if let Expr::Load { width: 8, addr, .. } = &e {
        let (table, index, scale) = match_table_addr(addr)?;
        return Some(JumpTableForm::Absolute { table, scale, index });
    }
    // Relative: base + sext(load4(table + idx*scale)).
    let (atoms, base) = e.as_sum();
    if atoms.len() == 1 {
        if let Expr::Load { width, sext: _, addr } = &atoms[0] {
            if *width == 4 {
                let (table, index, scale) = match_table_addr(addr)?;
                return Some(JumpTableForm::Relative { table, base, scale, width: *width, index });
            }
        }
    }
    None
}

/// Maximum blocks walked backward on one path (edge crossings).
pub const MAX_DEPTH: usize = 8;
/// Maximum path states held per block fact before widening.
pub const MAX_PATHS: usize = 64;

/// One backward path's state at a block boundary: the symbolic target
/// expression as seen from here, the guard bound captured closest to the
/// jump (if any), and how many edges the path has crossed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PathState {
    /// Symbolic jump-target expression at this boundary.
    pub expr: Expr,
    /// First `(index reg, exclusive bound)` guard met on the path.
    pub bound: Option<(Reg, u64)>,
    /// Edge crossings from the jump block (caps at [`MAX_DEPTH`]).
    pub depth: usize,
}

impl PathState {
    /// The per-path result this state contributes to the union.
    fn fact(&self) -> PathFact {
        if self.expr.has_top() {
            // Dead path: contributes nothing (union semantics).
            return PathFact { form: None, bound: None };
        }
        match classify(&self.expr) {
            Some(f) => PathFact {
                form: Some(f),
                bound: self.bound.and_then(|(r, b)| (f.index() == r).then_some(b)),
            },
            None => PathFact { form: None, bound: None },
        }
    }

    /// Terminal states stop crossing edges: the path died (`Top`),
    /// resolved completely (form + matching bound), or hit the depth cap.
    fn is_terminal(&self) -> bool {
        if self.depth >= MAX_DEPTH || self.expr.has_top() {
            return true;
        }
        match classify(&self.expr) {
            Some(f) => self.bound.is_some_and(|(r, _)| f.index() == r),
            None => false,
        }
    }
}

/// The [`SliceSpec`] lattice fact: a bounded set of path states, ordered
/// for deterministic iteration. Union is the meet; exceeding
/// [`MAX_PATHS`] widens the set to the bare classified forms it already
/// contains (see [`PathSet::widen`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathSet {
    /// The per-path states.
    pub states: BTreeSet<PathState>,
}

impl PathSet {
    /// The widening operator. Keeps only states whose expression already
    /// classifies as a dispatch form — frozen at [`MAX_DEPTH`] so they
    /// stop propagating — and collapses everything else into a single
    /// `Top` marker. Still-ambiguous paths are given up on, the same
    /// trade the old DFS made with its global path cap; classified
    /// states survive up to the hard [`MAX_PATHS`] cap, those carrying
    /// a guard bound kept preferentially (a bounded form is what makes
    /// the eventual table scan exact, so it is the last thing to drop).
    ///
    /// Note this is *unconditional*: whether to widen is decided per
    /// block by [`SliceSpec::transfer`], stickily — see there for why.
    fn widen(&mut self) {
        let classified = self
            .states
            .iter()
            .filter(|s| !s.expr.has_top() && classify(&s.expr).is_some())
            .map(|s| PathState { expr: s.expr.clone(), bound: s.bound, depth: MAX_DEPTH });
        let (bounded, bare): (Vec<PathState>, Vec<PathState>) =
            classified.partition(|s| s.bound.is_some());
        let kept: BTreeSet<PathState> = bounded.into_iter().chain(bare).take(MAX_PATHS).collect();
        self.states = kept;
        self.states.insert(PathState { expr: Expr::Top, bound: None, depth: MAX_DEPTH });
    }
}

/// Backward walk through a block, stopping as soon as the expression
/// classifies: substituting past the resolution point would let
/// unrelated (or, in over-approximated split blocks, garbage)
/// definitions clobber an already-complete dispatch pattern.
fn walk_back(insns: &[Insn], skip_last: usize, mut expr: Expr) -> Expr {
    for i in insns.iter().rev().skip(skip_last) {
        if classify(&expr).is_some() {
            break;
        }
        expr = reverse_transfer(i, expr);
    }
    expr.simplify()
}

/// Backward jump-table slicing as a [`DataflowSpec`].
///
/// * **Fact**: [`PathSet`] — bounded set of `(expr, bound, depth)` path
///   states at each block boundary (entry side, since the problem is
///   backward).
/// * **Meet**: set union.
/// * **Transfer**: walk every state's expression backward through the
///   block's instructions, then enforce [`MAX_PATHS`] by sticky
///   widening; the jump block additionally injects the seed state (the
///   target expression walked back from the terminator).
/// * **Edge transfer**: crossing the CFG edge `p → b` backward drops
///   terminal states, bumps `depth`, and attaches the guard bound
///   extracted from `p`'s `cmp`+`jcc` terminator for the edge kind
///   actually taken — the part a direction-only engine cannot express,
///   hence [`DataflowSpec::edge_transfer`].
pub struct SliceSpec<'a> {
    jump_block: u64,
    seed: PathSet,
    /// Instructions of every block in the jump's backward cone (the
    /// blocks within [`MAX_DEPTH`] predecessor edges) — the only blocks
    /// a path state can ever reach, so the only ones worth touching
    /// (the old DFS had the same locality). Borrowed from the view's
    /// decode-once slices, nothing is copied or re-decoded; sorted by
    /// block address so lookups are binary searches over a flat array.
    insns: Vec<(u64, &'a [Insn])>,
    /// Blocks whose transfer has widened, stickily: once a block widens
    /// it keeps widening. Widening shrinks a fact (non-monotone), so
    /// without stickiness a cyclic CFG straddling [`MAX_PATHS`] could
    /// oscillate between widened and unwidened fixpoint candidates and
    /// the executor's worklist would never drain. Sticky widening means
    /// each block takes the one non-monotone step at most once; between
    /// and after those finitely many events the system is monotone, so
    /// the fixpoint iteration terminates.
    widened_blocks: std::sync::Mutex<std::collections::HashSet<u64>>,
}

impl<'a> SliceSpec<'a> {
    /// Build the spec for the indirect jump terminating `jump_block`.
    /// Returns `None` when the block's terminator is not an indirect
    /// jump.
    pub fn build(view: &'a dyn CfgView, jump_block: u64) -> Option<SliceSpec<'a>> {
        let jinsns = view.insns(jump_block);
        let term = jinsns.last()?;
        let Op::JmpInd { src } = term.op else { return None };

        let wanted = Expr::of_value(&src, 8, false);
        // The seed: the jump block walked backward, excluding the
        // terminator itself.
        let start_expr = walk_back(jinsns, 1, wanted);
        let mut seed = PathSet::default();
        seed.states.insert(PathState { expr: start_expr, bound: None, depth: 0 });

        // BFS the backward cone: blocks within MAX_DEPTH predecessor
        // edges of the jump. States die at MAX_DEPTH crossings, so
        // facts outside the cone are empty by construction and the rest
        // of the function's arena is never touched.
        let known: std::collections::HashSet<u64> = view.blocks().iter().copied().collect();
        let mut cone: HashMap<u64, &'a [Insn]> = HashMap::new();
        cone.insert(jump_block, jinsns);
        let mut frontier = vec![jump_block];
        for _ in 0..MAX_DEPTH {
            let mut next = Vec::new();
            for b in frontier {
                for &(p, _) in view.pred_edges(b) {
                    if known.contains(&p) && !cone.contains_key(&p) {
                        cone.insert(p, view.insns(p));
                        next.push(p);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        let mut insns: Vec<(u64, &'a [Insn])> = cone.into_iter().collect();
        insns.sort_unstable_by_key(|&(a, _)| a);
        Some(SliceSpec {
            jump_block,
            seed,
            insns,
            widened_blocks: std::sync::Mutex::new(std::collections::HashSet::new()),
        })
    }

    /// Instructions of cone member `block` (binary search over the
    /// sorted member list).
    fn insns_of(&self, block: u64) -> Option<&'a [Insn]> {
        self.insns.binary_search_by_key(&block, |&(a, _)| a).ok().map(|i| self.insns[i].1)
    }

    /// The [`FlowGraph`] restricted to the jump's backward cone — what
    /// the spec should be executed over. Running over the full function
    /// graph is equally correct (facts outside the cone stay empty) but
    /// pays per-block fixpoint overhead for blocks that can never
    /// contribute. Member blocks are sorted for a deterministic dense
    /// order regardless of the view's iteration order.
    pub fn cone_graph(&self, view: &dyn CfgView) -> FlowGraph {
        let blocks: Vec<u64> = self.insns.iter().map(|&(a, _)| a).collect();
        let mut edges = Vec::new();
        for &b in &blocks {
            for &(d, kind) in view.succ_edges(b) {
                if self.insns_of(d).is_some() {
                    edges.push((b, d, kind));
                }
            }
        }
        FlowGraph::from_parts(blocks, view.entry(), &edges)
    }

    /// Union the per-path facts found at every block boundary of a
    /// fixpoint run — terminated paths rest where they terminated, so
    /// the whole boundary map is the answer. Blocks are visited in
    /// ascending address order for a deterministic fact list.
    pub fn collect_facts(&self, results: &DataflowResults<PathSet>) -> Vec<PathFact> {
        let mut order: Vec<usize> = (0..results.blocks().len()).collect();
        order.sort_unstable_by_key(|&i| results.blocks()[i]);
        let mut facts = Vec::new();
        for i in order {
            for s in &results.output[i].states {
                facts.push(s.fact());
            }
        }
        facts
    }

    /// Whether any block's transfer widened during the run (the sticky
    /// set is the single source of truth for widening).
    pub fn any_widened(&self) -> bool {
        !self.widened_blocks.lock().expect("widened_blocks").is_empty()
    }
}

impl DataflowSpec for SliceSpec<'_> {
    type Fact = PathSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self, _block: u64) -> PathSet {
        PathSet::default()
    }

    fn boundary(&self, _block: u64) -> PathSet {
        // Nothing enters at exit blocks; the only source of states is
        // the jump block's transfer injecting the seed.
        PathSet::default()
    }

    fn meet(&self, into: &mut PathSet, incoming: &PathSet) {
        // Plain union: the MAX_PATHS bound is enforced (stickily, per
        // block) by `transfer`, which knows which block it is at.
        into.states.extend(incoming.states.iter().cloned());
    }

    fn transfer(&self, block: u64, input: &PathSet) -> PathSet {
        let insns: &[Insn] = self.insns_of(block).unwrap_or(&[]);
        let mut out = PathSet { states: BTreeSet::new() };
        for s in &input.states {
            let expr = walk_back(insns, 0, s.expr.clone());
            out.states.insert(PathState { expr, bound: s.bound, depth: s.depth });
        }
        // Sticky widening (see `widened_blocks`): a block that once
        // exceeded MAX_PATHS keeps widening even if its input later
        // shrinks, so the one output-shrinking step happens at most
        // once per block and the fixpoint cannot oscillate.
        {
            let mut sticky = self.widened_blocks.lock().expect("widened_blocks");
            if sticky.contains(&block) || out.states.len() > MAX_PATHS {
                sticky.insert(block);
                drop(sticky);
                out.widen();
            }
        }
        if block == self.jump_block {
            // The seed joins after widening: the jump block's own state
            // is the anchor of the whole analysis and must survive even
            // when a cycle floods the block past the cap.
            out.states.extend(self.seed.states.iter().cloned());
        }
        out
    }

    fn edge_transfer(&self, src: u64, dst: u64, kind: EdgeKind, fact: &PathSet) -> Option<PathSet> {
        let _ = dst;
        let mut out = PathSet { states: BTreeSet::new() };
        let src_insns: &[Insn] = self.insns_of(src).unwrap_or(&[]);
        for s in fact.states.iter().filter(|s| !s.is_terminal()) {
            // The bound closest to the jump wins; tracked registers are
            // those of the expression *before* it is walked through the
            // guard block (the guard compares the value the dispatch
            // consumes).
            let pbound = bound_from_pred(src_insns, kind, s.expr.free_regs());
            out.states.insert(PathState {
                expr: s.expr.clone(),
                bound: s.bound.or(pbound),
                depth: s.depth + 1,
            });
        }
        Some(out)
    }
}

/// Everything one engine-backed slicing run produced.
#[derive(Debug, Clone)]
pub struct SliceOutcome {
    /// Per-path facts, unioned over every block boundary.
    pub facts: Vec<PathFact>,
    /// Whether any block's path set hit [`MAX_PATHS`] and widened.
    pub widened: bool,
}

/// Run the engine-backed slice for the indirect jump terminating
/// `jump_block`. Returns `None` if the terminator is not an indirect
/// jump.
pub fn slice_indirect_jump(view: &dyn CfgView, jump_block: u64) -> Option<SliceOutcome> {
    slice_indirect_jump_with(view, jump_block, crate::engine::ExecutorKind::Serial)
}

/// [`slice_indirect_jump`] under an explicit executor. Below
/// [`MAX_PATHS`] the spec is monotone, so both executors reach the same
/// fixpoint by construction. Widening is the caveat: whether a block
/// ever sees an input big enough to trip its sticky bit depends on
/// which *intermediate* predecessor outputs the schedule publishes, so
/// executor agreement on widening-heavy graphs is an empirical
/// property, not an a-priori one — `tests/slice_equiv.rs` pins it on
/// the generated corpus and on a fan-out that widens, and both
/// executors are individually deterministic, so any divergence shows
/// up as a hard test failure rather than a flake.
pub fn slice_indirect_jump_with(
    view: &dyn CfgView,
    jump_block: u64,
    exec: crate::engine::ExecutorKind,
) -> Option<SliceOutcome> {
    let spec = SliceSpec::build(view, jump_block)?;
    let graph = spec.cone_graph(view);
    let results = exec.run(&spec, &graph);
    Some(SliceOutcome { widened: spec.any_widened(), facts: spec.collect_facts(&results) })
}

/// Every `(function entry, jump block)` pair of a finalized CFG whose
/// block terminator is an indirect branch — the work list a
/// whole-binary slicing sweep fans out over (shared by the slice bench
/// and the executor-equivalence tests). Sorted for determinism.
pub fn collect_indirect_jumps(cfg: &pba_cfg::Cfg) -> Vec<(u64, u64)> {
    let mut jumps = Vec::new();
    for f in cfg.functions.values() {
        for &b in &f.blocks {
            let Some(blk) = cfg.blocks.get(&b) else { continue };
            let is_ind =
                cfg.code.insns(blk.start, blk.end).last().is_some_and(|i| {
                    matches!(i.control_flow(), pba_isa::ControlFlow::IndirectBranch)
                });
            if is_ind {
                jumps.push((f.entry, b));
            }
        }
    }
    jumps.sort_unstable();
    jumps
}

/// Analyze the indirect jump terminating `jump_block`: a thin wrapper
/// that runs [`SliceSpec`] under the [`crate::engine::SerialExecutor`] and unions the
/// per-path facts arriving at every block boundary. Returns an empty
/// vector if the terminator is not an indirect jump.
pub fn analyze_indirect_jump(view: &dyn CfgView, jump_block: u64) -> Vec<PathFact> {
    slice_indirect_jump(view, jump_block).map(|o| o.facts).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DataflowExecutor, SerialExecutor};
    use crate::view::VecView;
    use pba_isa::x86::{decode_one, encode};
    use pba_isa::MemRef;

    fn decode_seq(bytes: &[u8], base: u64) -> Vec<Insn> {
        let mut out = vec![];
        let mut at = 0usize;
        while at < bytes.len() {
            let i = decode_one(&bytes[at..], base + at as u64).unwrap();
            at += i.len as usize;
            out.push(i);
        }
        out
    }

    /// cmp rdi, 4 ; ja default | table block: jmp [0x601000 + rdi*8]
    fn absolute_table_view() -> VecView {
        let mut guard = vec![];
        encode::cmp_ri(&mut guard, Reg::RDI, 4);
        let j = encode::jcc_rel32(&mut guard, Cond::A);
        encode::patch_rel32(&mut guard, j, 0x200);
        let guard_insns = decode_seq(&guard, 0x1000);
        let guard_end = 0x1000 + guard.len() as u64;

        let mut disp = vec![];
        encode::jmp_ind_mem(&mut disp, &MemRef::base_index(None, Reg::RDI, 8, 0x601000));
        let disp_insns = decode_seq(&disp, 0x2000);
        let disp_end = 0x2000 + disp.len() as u64;

        VecView::new(
            0x1000,
            vec![(0x1000, guard_end, guard_insns), (0x2000, disp_end, disp_insns)],
            vec![(0x1000, 0x2000, EdgeKind::CondNotTaken), (0x1000, 0x3000, EdgeKind::CondTaken)],
        )
    }

    #[test]
    fn absolute_pattern_with_bound() {
        let view = absolute_table_view();
        let facts = analyze_indirect_jump(&view, 0x2000);
        let hit = facts
            .iter()
            .filter(|f| f.form.is_some())
            .max_by_key(|f| f.bound.is_some())
            .expect("one path must classify");
        assert_eq!(
            hit.form,
            Some(JumpTableForm::Absolute { table: 0x601000, scale: 8, index: Reg::RDI })
        );
        assert_eq!(hit.bound, Some(5), "cmp rdi,4 ; ja → indices 0..=4");
    }

    #[test]
    fn relative_pic_pattern() {
        // guard:  cmp rsi, 7 ; ja default
        // disp:   lea rcx, [rip+T] ; movsxd rax, dword [rcx + rsi*4] ;
        //         add rax, rcx ; jmp rax
        let mut guard = vec![];
        encode::cmp_ri(&mut guard, Reg::RSI, 7);
        let j = encode::jcc_rel32(&mut guard, Cond::A);
        encode::patch_rel32(&mut guard, j, 0x300);
        let guard_insns = decode_seq(&guard, 0x1000);
        let guard_end = 0x1000 + guard.len() as u64;

        let mut disp = vec![];
        let lea_site = encode::lea_rip(&mut disp, Reg::RCX);
        encode::movsxd(&mut disp, Reg::RAX, &MemRef::base_index(Some(Reg::RCX), Reg::RSI, 4, 0));
        encode::alu_rr(&mut disp, AluKind::Add, Reg::RAX, Reg::RCX);
        encode::jmp_ind_reg(&mut disp, Reg::RAX);
        // Table at buffer offset 0x100 → vaddr 0x2100.
        encode::patch_rel32(&mut disp, lea_site, 0x100);
        let disp_insns = decode_seq(&disp, 0x2000);
        let disp_end = 0x2000 + disp.len() as u64;

        let view = VecView::new(
            0x1000,
            vec![(0x1000, guard_end, guard_insns), (0x2000, disp_end, disp_insns)],
            vec![(0x1000, 0x2000, EdgeKind::CondNotTaken), (0x1000, 0x4000, EdgeKind::CondTaken)],
        );
        let facts = analyze_indirect_jump(&view, 0x2000);
        let hit = facts
            .iter()
            .filter(|f| f.form.is_some())
            .max_by_key(|f| f.bound.is_some())
            .expect("classified");
        assert_eq!(
            hit.form,
            Some(JumpTableForm::Relative {
                table: 0x2100,
                base: 0x2100,
                scale: 4,
                width: 4,
                index: Reg::RSI
            })
        );
        assert_eq!(hit.bound, Some(8));
    }

    #[test]
    fn unresolvable_jump_register_yields_no_form() {
        // jmp rax with rax loaded via an unmodeled op (pop).
        let mut code = vec![];
        encode::pop_r(&mut code, Reg::RAX);
        encode::jmp_ind_reg(&mut code, Reg::RAX);
        let insns = decode_seq(&code, 0x1000);
        let end = 0x1000 + code.len() as u64;
        let view = VecView::new(0x1000, vec![(0x1000, end, insns)], vec![]);
        let facts = analyze_indirect_jump(&view, 0x1000);
        assert!(facts.iter().all(|f| f.form.is_none()));
    }

    #[test]
    fn non_indirect_terminator_returns_empty() {
        let mut code = vec![];
        encode::ret(&mut code);
        let insns = decode_seq(&code, 0x1000);
        let view = VecView::new(0x1000, vec![(0x1000, 0x1001, insns)], vec![]);
        assert!(analyze_indirect_jump(&view, 0x1000).is_empty());
    }

    /// A jump block whose predecessor subgraph is detached from the
    /// function entry (the parser's `ensure_block` snapshots produce
    /// exactly this shape mid-parse): the slice must still classify the
    /// dispatch and recover the guard bound from the unreachable pred.
    #[test]
    fn unreachable_pred_jump_block_still_classifies() {
        let mut entry = vec![];
        encode::ret(&mut entry);
        let entry_insns = decode_seq(&entry, 0x1000);

        let mut guard = vec![];
        encode::cmp_ri(&mut guard, Reg::RDI, 4);
        let j = encode::jcc_rel32(&mut guard, Cond::A);
        encode::patch_rel32(&mut guard, j, 0x200);
        let guard_insns = decode_seq(&guard, 0x4000);
        let guard_end = 0x4000 + guard.len() as u64;

        let mut disp = vec![];
        encode::jmp_ind_mem(&mut disp, &MemRef::base_index(None, Reg::RDI, 8, 0x601000));
        let disp_insns = decode_seq(&disp, 0x2000);
        let disp_end = 0x2000 + disp.len() as u64;

        let view = VecView::new(
            0x1000,
            vec![
                (0x1000, 0x1001, entry_insns),
                (0x4000, guard_end, guard_insns),
                (0x2000, disp_end, disp_insns),
            ],
            // No path from the entry to the guard or the jump block.
            vec![(0x4000, 0x2000, EdgeKind::CondNotTaken), (0x4000, 0x5000, EdgeKind::CondTaken)],
        );
        let facts = analyze_indirect_jump(&view, 0x2000);
        let hit = facts
            .iter()
            .filter(|f| f.form.is_some())
            .max_by_key(|f| f.bound.is_some())
            .expect("detached subgraph must still classify");
        assert_eq!(
            hit.form,
            Some(JumpTableForm::Absolute { table: 0x601000, scale: 8, index: Reg::RDI })
        );
        assert_eq!(hit.bound, Some(5));
    }

    /// An `Alu` that does not write the flags the branch consumes must
    /// NOT drop the guard bound: `inc` leaves CF untouched, and `jae`
    /// reads only CF, so the branch still tests the `cmp`.
    ///
    /// This deliberately flips the old pinned expectation
    /// (`flags_clobber_between_cmp_and_jcc_drops_bound`), which treated
    /// *every* `Alu` between the `cmp` and the `jcc` as a clobber; the
    /// per-kind flag tracking (`Insn::flags_written`) recovers these
    /// bounds. The genuine-clobber case is pinned separately below.
    #[test]
    fn non_flag_writing_alu_between_cmp_and_jcc_keeps_bound() {
        let mut guard = vec![];
        encode::cmp_ri(&mut guard, Reg::RDI, 4);
        // `inc rsi` writes ZF/SF/OF/PF/AF but spares CF — the only flag
        // the `jae` consumes.
        encode::inc_r(&mut guard, Reg::RSI);
        let j = encode::jcc_rel32(&mut guard, Cond::Ae);
        encode::patch_rel32(&mut guard, j, 0x200);
        let guard_insns = decode_seq(&guard, 0x1000);
        let guard_end = 0x1000 + guard.len() as u64;

        let mut disp = vec![];
        encode::jmp_ind_mem(&mut disp, &MemRef::base_index(None, Reg::RDI, 8, 0x601000));
        let disp_insns = decode_seq(&disp, 0x2000);
        let disp_end = 0x2000 + disp.len() as u64;

        let view = VecView::new(
            0x1000,
            vec![(0x1000, guard_end, guard_insns), (0x2000, disp_end, disp_insns)],
            vec![(0x1000, 0x2000, EdgeKind::CondNotTaken), (0x1000, 0x3000, EdgeKind::CondTaken)],
        );
        let facts = analyze_indirect_jump(&view, 0x2000);
        let hit = facts
            .iter()
            .filter(|f| f.form.is_some())
            .max_by_key(|f| f.bound.is_some())
            .expect("form classifies");
        assert_eq!(
            hit.bound,
            Some(4),
            "cmp rdi,4 ; inc rsi ; jae default → r < 4 survives: {facts:?}"
        );
    }

    /// A genuine flags clobber between the `cmp` and the `jcc` — an
    /// `add` rewriting CF, which the `ja` consumes — means the branch
    /// no longer tests the compare: `bound_from_pred` (correctly, if
    /// silently) refuses the bound, and the table is analyzed as
    /// unbounded. Pins the behavior the parser's unbounded scan path
    /// depends on.
    #[test]
    fn genuine_flags_clobber_between_cmp_and_jcc_drops_bound() {
        let mut guard = vec![];
        encode::cmp_ri(&mut guard, Reg::RDI, 4);
        // `add rsi, 1` rewrites the flags the `ja` consumes.
        encode::alu_ri(&mut guard, AluKind::Add, Reg::RSI, 1);
        let j = encode::jcc_rel32(&mut guard, Cond::A);
        encode::patch_rel32(&mut guard, j, 0x200);
        let guard_insns = decode_seq(&guard, 0x1000);
        let guard_end = 0x1000 + guard.len() as u64;

        let mut disp = vec![];
        encode::jmp_ind_mem(&mut disp, &MemRef::base_index(None, Reg::RDI, 8, 0x601000));
        let disp_insns = decode_seq(&disp, 0x2000);
        let disp_end = 0x2000 + disp.len() as u64;

        let view = VecView::new(
            0x1000,
            vec![(0x1000, guard_end, guard_insns), (0x2000, disp_end, disp_insns)],
            vec![(0x1000, 0x2000, EdgeKind::CondNotTaken), (0x1000, 0x3000, EdgeKind::CondTaken)],
        );
        let facts = analyze_indirect_jump(&view, 0x2000);
        assert!(facts.iter().any(|f| f.form.is_some()), "form still classifies");
        assert!(
            facts.iter().all(|f| f.bound.is_none()),
            "clobbered guard must not contribute a bound: {facts:?}"
        );
    }

    /// A chain of 8 diamonds whose arms perturb the jump register fans
    /// out into 2^7 = 128 distinct path states mid-chain — past
    /// `MAX_PATHS` — so the fact sets widen. The widened (ambiguous)
    /// paths are given up on, but the direct bypass path that resolves
    /// the PIC-style dispatch survives, bound included, and every
    /// per-block fact stays bounded.
    #[test]
    fn widened_diamond_cfg_keeps_resolved_path() {
        // guard: cmp rsi, 7 ; ja default
        let mut guard = vec![];
        encode::cmp_ri(&mut guard, Reg::RSI, 7);
        let j = encode::jcc_rel32(&mut guard, Cond::A);
        encode::patch_rel32(&mut guard, j, 0x300);
        let guard_insns = decode_seq(&guard, 0x1000);
        let guard_end = 0x1000 + guard.len() as u64;

        // t: lea rcx, [rip+T] ; movsxd rax, [rcx + rsi*4] ; add rax, rcx
        let mut t = vec![];
        let lea_site = encode::lea_rip(&mut t, Reg::RCX);
        encode::movsxd(&mut t, Reg::RAX, &MemRef::base_index(Some(Reg::RCX), Reg::RSI, 4, 0));
        encode::alu_rr(&mut t, AluKind::Add, Reg::RAX, Reg::RCX);
        encode::patch_rel32(&mut t, lea_site, 0x100); // table at 0x2100
        let t_insns = decode_seq(&t, 0x2000);
        let t_end = 0x2000 + t.len() as u64;

        // jump block: jmp rax
        let mut jb = vec![];
        encode::jmp_ind_reg(&mut jb, Reg::RAX);
        let jb_insns = decode_seq(&jb, 0x9000);
        let jb_end = 0x9000 + jb.len() as u64;

        let arm_a = |i: u64| 0x3000 + i * 0x100;
        let arm_b = |i: u64| 0x3000 + i * 0x100 + 0x80;

        let mut block_data = vec![
            (0x1000, guard_end, guard_insns),
            (0x2000, t_end, t_insns),
            (0x9000, jb_end, jb_insns),
        ];
        let mut edges = vec![
            (0x1000, 0x2000, EdgeKind::CondNotTaken),
            (0x1000, 0x7000, EdgeKind::CondTaken),
            // The bypass: dispatch straight after t resolves the form.
            (0x2000, 0x9000, EdgeKind::Direct),
            (0x2000, arm_a(1), EdgeKind::CondTaken),
            (0x2000, arm_b(1), EdgeKind::CondNotTaken),
        ];
        for i in 1..=8u64 {
            // Arm A is a no-op for the sliced register; arm B shifts it
            // by a per-diamond power of two so every path's accumulated
            // constant is distinct (2^7 states by mid-chain).
            let mut a = vec![];
            encode::alu_ri(&mut a, AluKind::Add, Reg::RAX, 0);
            let mut b = vec![];
            encode::alu_ri(&mut b, AluKind::Add, Reg::RAX, 1 << i);
            let a_insns = decode_seq(&a, arm_a(i));
            let b_insns = decode_seq(&b, arm_b(i));
            block_data.push((arm_a(i), arm_a(i) + a.len() as u64, a_insns));
            block_data.push((arm_b(i), arm_b(i) + b.len() as u64, b_insns));
            if i < 8 {
                for src in [arm_a(i), arm_b(i)] {
                    edges.push((src, arm_a(i + 1), EdgeKind::CondTaken));
                    edges.push((src, arm_b(i + 1), EdgeKind::CondNotTaken));
                }
            } else {
                edges.push((arm_a(i), 0x9000, EdgeKind::Direct));
                edges.push((arm_b(i), 0x9000, EdgeKind::Direct));
            }
        }
        let view = VecView::new(0x1000, block_data, edges);

        let outcome = slice_indirect_jump(&view, 0x9000).expect("indirect jump");
        assert!(outcome.widened, "the diamond fan-out must trip MAX_PATHS widening");
        let hit = outcome
            .facts
            .iter()
            .filter(|f| f.form.is_some())
            .max_by_key(|f| f.bound.is_some())
            .expect("bypass path must survive widening");
        assert_eq!(
            hit.form,
            Some(JumpTableForm::Relative {
                table: 0x2100,
                base: 0x2100,
                scale: 4,
                width: 4,
                index: Reg::RSI
            })
        );
        assert_eq!(hit.bound, Some(8));

        // Spec-level: no block's fixpoint fact may exceed the widening
        // cap (+1 for the Top marker widening leaves behind, +1 for the
        // jump block's seed which joins after widening).
        let spec = SliceSpec::build(&view, 0x9000).expect("spec");
        let graph = spec.cone_graph(&view);
        let results = SerialExecutor.run(&spec, &graph);
        for (b, fact) in results.iter_output() {
            assert!(
                fact.states.len() <= MAX_PATHS + 2,
                "block {b:#x} holds {} states",
                fact.states.len()
            );
        }
    }

    #[test]
    fn union_over_paths_survives_one_bad_path() {
        // Two predecessors: one provides a clean guard, the other
        // clobbers the index register with an unmodeled op. The good
        // path's fact must still be produced (monotonicity fix).
        let view0 = absolute_table_view();
        let mut bad = vec![];
        encode::pop_r(&mut bad, Reg::RDI); // unmodeled def of the index
        let j = encode::jmp_rel32(&mut bad);
        encode::patch_rel32(&mut bad, j, 0x2000u32 as usize);
        let bad_insns = decode_seq(&bad, 0x5000);
        let bad_end = 0x5000 + bad.len() as u64;

        let mut view = view0;
        view.block_data.push((0x5000, bad_end, bad_insns));
        view.edges.push((0x5000, 0x2000, EdgeKind::Direct));

        let facts = analyze_indirect_jump(&view, 0x2000);
        assert!(
            facts.iter().any(|f| f.form.is_some() && f.bound == Some(5)),
            "good path must survive: {facts:?}"
        );
    }
}
