//! Backward slicing + symbolic evaluation of indirect-jump targets.
//!
//! From the indirect jump, walk definitions backward — first within the
//! jump's block, then across intra-procedural predecessor edges (bounded
//! depth and path count) — substituting each definition into the target
//! expression. Along the way, collect `cmp index, N` + conditional-branch
//! facts that bound the index on this path.
//!
//! Results are reported **per path** and the caller unions them: this is
//! the paper's monotonicity fix ("taking the union of the targets
//! discovered along different paths, essentially ignoring instructions
//! or path conditions that fail analysis", Section 5.3). A path whose
//! expression degenerates to `Top` contributes nothing instead of
//! failing the whole analysis.

use crate::expr::Expr;
use crate::view::CfgView;
use pba_cfg::EdgeKind;
use pba_isa::{insn::AluKind, insn::Cond, insn::ShiftKind, Insn, Op, Place, Reg, Value};

/// Recognized jump-table dispatch forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JumpTableForm {
    /// `target = load8(table + index*scale)` — absolute pointer table.
    Absolute {
        /// Table base address.
        table: u64,
        /// Entry stride.
        scale: u8,
        /// Index register.
        index: Reg,
    },
    /// `target = base + sext(load_w(table + index*scale))` — the
    /// PIC-style relative table GCC emits.
    Relative {
        /// Table base address.
        table: u64,
        /// Value added to each (sign-extended) entry.
        base: u64,
        /// Entry stride.
        scale: u8,
        /// Entry width in bytes.
        width: u8,
        /// Index register.
        index: Reg,
    },
}

impl JumpTableForm {
    /// The index register of the form.
    pub fn index(&self) -> Reg {
        match self {
            JumpTableForm::Absolute { index, .. } | JumpTableForm::Relative { index, .. } => *index,
        }
    }

    /// Table base address.
    pub fn table(&self) -> u64 {
        match self {
            JumpTableForm::Absolute { table, .. } | JumpTableForm::Relative { table, .. } => *table,
        }
    }

    /// Entry stride in bytes.
    pub fn stride(&self) -> u8 {
        match self {
            JumpTableForm::Absolute { scale, .. } | JumpTableForm::Relative { scale, .. } => *scale,
        }
    }
}

/// What one backward path learned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathFact {
    /// The recognized table form, if the expression matched one.
    pub form: Option<JumpTableForm>,
    /// Exclusive upper bound on the index register (entry count), if a
    /// guarding comparison was found on this path.
    pub bound: Option<u64>,
}

/// Apply the reverse transfer of one instruction to the wanted
/// expression. Returns the updated expression.
fn reverse_transfer(i: &Insn, wanted: Expr) -> Expr {
    let written = i.regs_written();
    // Fast reject: instruction doesn't define anything we track.
    if written.intersect(wanted.free_regs()).is_empty() {
        return wanted;
    }
    match i.op {
        Op::Mov { dst: Place::Reg(r), src, width, sign_extend } => {
            let v = match src {
                Value::Reg(s) => Expr::Reg(s),
                Value::Imm(imm) => Expr::Const(imm as u64),
                Value::Mem(m, w) => Expr::Load {
                    width: w,
                    sext: sign_extend && width == 4,
                    addr: Box::new(Expr::of_mem(&m)),
                },
            };
            wanted.subst(r, &v)
        }
        Op::Lea { dst, mem } => wanted.subst(dst, &Expr::of_mem(&mem)),
        Op::Alu { kind, dst: Place::Reg(r), src, .. } => {
            let old = Expr::Reg(r);
            let v = match (kind, &src) {
                (AluKind::Xor, Value::Reg(s)) if *s == r => Expr::Const(0),
                (AluKind::Add, _) => {
                    Expr::Add(Box::new(old), Box::new(Expr::of_value(&src, 8, false)))
                }
                (AluKind::Sub, Value::Imm(n)) => {
                    Expr::Add(Box::new(old), Box::new(Expr::Const((-n) as u64)))
                }
                // Masking (`and idx, N-1`) only narrows the index range;
                // treating it as identity over-approximates the target
                // set, which union-over-paths tolerates and finalization
                // clamps (the paper's Section 5.3/5.4 pipeline).
                (AluKind::And, Value::Imm(n)) if *n >= 0 => old,
                _ => Expr::Top,
            };
            wanted.subst(r, &v)
        }
        Op::Shift { kind: ShiftKind::Shl, dst: Place::Reg(r), amount: Value::Imm(k), .. }
            if (0..16).contains(&k) =>
        {
            wanted.subst(r, &Expr::Mul(Box::new(Expr::Reg(r)), 1u64 << k))
        }
        _ => {
            // Any other write to a tracked register loses it.
            let mut w = wanted;
            for r in written.iter() {
                if r.is_gpr() {
                    w = w.subst(r, &Expr::Top);
                }
            }
            w
        }
    }
}

/// Extract a bound from a predecessor's terminator: `cmp r, N` followed
/// by a conditional branch whose `kind`-side edge we arrived through.
fn bound_from_pred(
    insns: &[Insn],
    edge_kind: EdgeKind,
    tracked: pba_isa::RegSet,
) -> Option<(Reg, u64)> {
    let term = insns.last()?;
    let Op::Jcc { cond, .. } = term.op else { return None };
    // Find the last flags-setting compare before the terminator.
    let cmp = insns
        .iter()
        .rev()
        .skip(1)
        .find(|i| matches!(i.op, Op::Cmp { .. } | Op::Test { .. } | Op::Alu { .. }))?;
    let Op::Cmp { a: Value::Reg(r), b: Value::Imm(n), .. } = cmp.op else { return None };
    if !tracked.contains(r) || n < 0 {
        return None;
    }
    let n = n as u64;
    // Which side of the branch leads to the jump table?
    let via_taken = edge_kind == EdgeKind::CondTaken;
    let bound = match (cond, via_taken) {
        // cmp r, N ; ja default  → table side is fall-through: r <= N.
        (Cond::A, false) => Some(n + 1),
        // cmp r, N ; jae default → fall-through: r < N.
        (Cond::Ae, false) => Some(n),
        // cmp r, N ; jbe table   → taken side: r <= N.
        (Cond::Be, true) => Some(n + 1),
        // cmp r, N ; jb table    → taken side: r < N.
        (Cond::B, true) => Some(n),
        _ => None,
    }?;
    Some((r, bound))
}

/// Try to match the simplified expression against the known dispatch
/// forms.
fn classify(e: &Expr) -> Option<JumpTableForm> {
    fn match_table_addr(addr: &Expr) -> Option<(u64, Reg, u8)> {
        let (atoms, konst) = addr.as_sum();
        let mut index: Option<(Reg, u8)> = None;
        for a in atoms {
            match a {
                Expr::Reg(r) if index.is_none() => index = Some((r, 1)),
                Expr::Mul(inner, k) => match (*inner, index) {
                    (Expr::Reg(r), None) if k <= 8 => index = Some((r, k as u8)),
                    _ => return None,
                },
                _ => return None,
            }
        }
        let (r, s) = index?;
        Some((konst, r, s))
    }

    let e = e.simplify();
    // Absolute: load8(table + idx*scale).
    if let Expr::Load { width: 8, addr, .. } = &e {
        let (table, index, scale) = match_table_addr(addr)?;
        return Some(JumpTableForm::Absolute { table, scale, index });
    }
    // Relative: base + sext(load4(table + idx*scale)).
    let (atoms, base) = e.as_sum();
    if atoms.len() == 1 {
        if let Expr::Load { width, sext: _, addr } = &atoms[0] {
            if *width == 4 {
                let (table, index, scale) = match_table_addr(addr)?;
                return Some(JumpTableForm::Relative { table, base, scale, width: *width, index });
            }
        }
    }
    None
}

/// Maximum blocks walked backward on one path.
const MAX_DEPTH: usize = 8;
/// Maximum total paths explored.
const MAX_PATHS: usize = 64;

/// Analyze the indirect jump terminating `jump_block`. Returns one
/// [`PathFact`] per explored path (empty if the terminator is not an
/// indirect jump).
pub fn analyze_indirect_jump(view: &dyn CfgView, jump_block: u64) -> Vec<PathFact> {
    let insns = view.insns(jump_block);
    let Some(term) = insns.last() else { return vec![] };
    let Op::JmpInd { src } = term.op else { return vec![] };

    let wanted = Expr::of_value(&src, 8, false);
    let mut facts = Vec::new();
    let mut paths = 0usize;

    // Depth-first over (block, position-exhausted expression, bound).
    struct Job {
        block: u64,
        expr: Expr,
        bound: Option<(Reg, u64)>,
        depth: usize,
    }

    // Backward walk through a block, stopping as soon as the expression
    // classifies: substituting past the resolution point would let
    // unrelated (or, in over-approximated split blocks, garbage)
    // definitions clobber an already-complete dispatch pattern.
    let walk_back = |insns: &[Insn], skip_last: usize, mut expr: Expr| -> Expr {
        for i in insns.iter().rev().skip(skip_last) {
            if classify(&expr).is_some() {
                break;
            }
            expr = reverse_transfer(i, expr);
        }
        expr.simplify()
    };

    // First: walk the jump block itself (excluding the terminator).
    let start_expr = walk_back(&insns, 1, wanted);

    let mut stack = vec![Job { block: jump_block, expr: start_expr, bound: None, depth: 0 }];
    while let Some(job) = stack.pop() {
        if paths >= MAX_PATHS {
            break;
        }
        let expr = job.expr.simplify();
        if expr.has_top() {
            // Dead path: contributes nothing (union semantics).
            paths += 1;
            facts.push(PathFact { form: None, bound: None });
            continue;
        }
        let form = classify(&expr);
        let resolved = form.is_some();
        if resolved || job.depth >= MAX_DEPTH {
            paths += 1;
            let bound = match (form, job.bound) {
                (Some(f), Some((r, b))) if f.index() == r => Some(b),
                _ => None,
            };
            // The form is complete once classify succeeds *and* a bound
            // was found; if no bound yet, walking further back may find
            // the guard. The bare form is recorded immediately as a
            // fallback so a Top-degenerating predecessor path cannot
            // erase a resolved dispatch pattern (union-over-paths).
            if bound.is_some() || job.depth >= MAX_DEPTH {
                facts.push(PathFact { form, bound });
                continue;
            }
            facts.push(PathFact { form, bound: None });
            let preds = view.pred_edges(job.block);
            if preds.is_empty() {
                continue;
            }
            for (p, kind) in preds {
                let pinsns = view.insns(p);
                let pbound = bound_from_pred(&pinsns, kind, expr.free_regs());
                let e = walk_back(&pinsns, 0, expr.clone());
                stack.push(Job {
                    block: p,
                    expr: e,
                    bound: job.bound.or(pbound),
                    depth: job.depth + 1,
                });
            }
            continue;
        }
        // Unresolved: continue into predecessors.
        let preds = view.pred_edges(job.block);
        if preds.is_empty() {
            paths += 1;
            facts.push(PathFact { form: None, bound: None });
            continue;
        }
        for (p, kind) in preds {
            let pinsns = view.insns(p);
            let pbound = bound_from_pred(&pinsns, kind, expr.free_regs());
            let e = walk_back(&pinsns, 0, expr.clone());
            stack.push(Job {
                block: p,
                expr: e,
                bound: job.bound.or(pbound),
                depth: job.depth + 1,
            });
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::VecView;
    use pba_isa::x86::{decode_one, encode};
    use pba_isa::MemRef;

    fn decode_seq(bytes: &[u8], base: u64) -> Vec<Insn> {
        let mut out = vec![];
        let mut at = 0usize;
        while at < bytes.len() {
            let i = decode_one(&bytes[at..], base + at as u64).unwrap();
            at += i.len as usize;
            out.push(i);
        }
        out
    }

    /// cmp rdi, 4 ; ja default | table block: jmp [0x601000 + rdi*8]
    fn absolute_table_view() -> VecView {
        let mut guard = vec![];
        encode::cmp_ri(&mut guard, Reg::RDI, 4);
        let j = encode::jcc_rel32(&mut guard, Cond::A);
        encode::patch_rel32(&mut guard, j, 0x200);
        let guard_insns = decode_seq(&guard, 0x1000);
        let guard_end = 0x1000 + guard.len() as u64;

        let mut disp = vec![];
        encode::jmp_ind_mem(&mut disp, &MemRef::base_index(None, Reg::RDI, 8, 0x601000));
        let disp_insns = decode_seq(&disp, 0x2000);
        let disp_end = 0x2000 + disp.len() as u64;

        VecView {
            entry_block: 0x1000,
            block_data: vec![(0x1000, guard_end, guard_insns), (0x2000, disp_end, disp_insns)],
            edges: vec![
                (0x1000, 0x2000, EdgeKind::CondNotTaken),
                (0x1000, 0x3000, EdgeKind::CondTaken),
            ],
        }
    }

    #[test]
    fn absolute_pattern_with_bound() {
        let view = absolute_table_view();
        let facts = analyze_indirect_jump(&view, 0x2000);
        let hit = facts
            .iter()
            .filter(|f| f.form.is_some())
            .max_by_key(|f| f.bound.is_some())
            .expect("one path must classify");
        assert_eq!(
            hit.form,
            Some(JumpTableForm::Absolute { table: 0x601000, scale: 8, index: Reg::RDI })
        );
        assert_eq!(hit.bound, Some(5), "cmp rdi,4 ; ja → indices 0..=4");
    }

    #[test]
    fn relative_pic_pattern() {
        // guard:  cmp rsi, 7 ; ja default
        // disp:   lea rcx, [rip+T] ; movsxd rax, dword [rcx + rsi*4] ;
        //         add rax, rcx ; jmp rax
        let mut guard = vec![];
        encode::cmp_ri(&mut guard, Reg::RSI, 7);
        let j = encode::jcc_rel32(&mut guard, Cond::A);
        encode::patch_rel32(&mut guard, j, 0x300);
        let guard_insns = decode_seq(&guard, 0x1000);
        let guard_end = 0x1000 + guard.len() as u64;

        let mut disp = vec![];
        let lea_site = encode::lea_rip(&mut disp, Reg::RCX);
        encode::movsxd(&mut disp, Reg::RAX, &MemRef::base_index(Some(Reg::RCX), Reg::RSI, 4, 0));
        encode::alu_rr(&mut disp, AluKind::Add, Reg::RAX, Reg::RCX);
        encode::jmp_ind_reg(&mut disp, Reg::RAX);
        // Table at buffer offset 0x100 → vaddr 0x2100.
        encode::patch_rel32(&mut disp, lea_site, 0x100);
        let disp_insns = decode_seq(&disp, 0x2000);
        let disp_end = 0x2000 + disp.len() as u64;

        let view = VecView {
            entry_block: 0x1000,
            block_data: vec![(0x1000, guard_end, guard_insns), (0x2000, disp_end, disp_insns)],
            edges: vec![
                (0x1000, 0x2000, EdgeKind::CondNotTaken),
                (0x1000, 0x4000, EdgeKind::CondTaken),
            ],
        };
        let facts = analyze_indirect_jump(&view, 0x2000);
        let hit = facts
            .iter()
            .filter(|f| f.form.is_some())
            .max_by_key(|f| f.bound.is_some())
            .expect("classified");
        assert_eq!(
            hit.form,
            Some(JumpTableForm::Relative {
                table: 0x2100,
                base: 0x2100,
                scale: 4,
                width: 4,
                index: Reg::RSI
            })
        );
        assert_eq!(hit.bound, Some(8));
    }

    #[test]
    fn unresolvable_jump_register_yields_no_form() {
        // jmp rax with rax loaded via an unmodeled op (pop).
        let mut code = vec![];
        encode::pop_r(&mut code, Reg::RAX);
        encode::jmp_ind_reg(&mut code, Reg::RAX);
        let insns = decode_seq(&code, 0x1000);
        let end = 0x1000 + code.len() as u64;
        let view =
            VecView { entry_block: 0x1000, block_data: vec![(0x1000, end, insns)], edges: vec![] };
        let facts = analyze_indirect_jump(&view, 0x1000);
        assert!(facts.iter().all(|f| f.form.is_none()));
    }

    #[test]
    fn non_indirect_terminator_returns_empty() {
        let mut code = vec![];
        encode::ret(&mut code);
        let insns = decode_seq(&code, 0x1000);
        let view = VecView {
            entry_block: 0x1000,
            block_data: vec![(0x1000, 0x1001, insns)],
            edges: vec![],
        };
        assert!(analyze_indirect_jump(&view, 0x1000).is_empty());
    }

    #[test]
    fn union_over_paths_survives_one_bad_path() {
        // Two predecessors: one provides a clean guard, the other
        // clobbers the index register with an unmodeled op. The good
        // path's fact must still be produced (monotonicity fix).
        let view0 = absolute_table_view();
        let mut bad = vec![];
        encode::pop_r(&mut bad, Reg::RDI); // unmodeled def of the index
        let j = encode::jmp_rel32(&mut bad);
        encode::patch_rel32(&mut bad, j, 0x2000u32 as usize);
        let bad_insns = decode_seq(&bad, 0x5000);
        let bad_end = 0x5000 + bad.len() as u64;

        let mut view = view0;
        view.block_data.push((0x5000, bad_end, bad_insns));
        view.edges.push((0x5000, 0x2000, EdgeKind::Direct));

        let facts = analyze_indirect_jump(&view, 0x2000);
        assert!(
            facts.iter().any(|f| f.form.is_some() && f.bound == Some(5)),
            "good path must survive: {facts:?}"
        );
    }
}
