//! The generic dataflow engine: one fixpoint, many analyses, three
//! executors.
//!
//! The paper's thesis is that once the CFG is finalized and read-only,
//! *any* client analysis can run in parallel. This module is the
//! machinery that makes that true for dataflow analyses rather than
//! per-analysis luck: an analysis describes itself as a
//! [`DataflowSpec`] — direction, lattice bottom, boundary fact, meet,
//! and block transfer — and an executor drives the Kildall worklist to
//! the least fixpoint. Because every spec here is monotone over a
//! finite-height lattice, the fixpoint is *unique*, so the
//! [`SerialExecutor`] (priority worklist in reverse postorder, from
//! [`pba_cfg::order`]), the [`ParallelExecutor`] (round-based rayon
//! worklist, after the `parallel-dataflow` exemplar), and the
//! [`AsyncExecutor`] (barrier-free worklist on work-stealing deques)
//! are interchangeable by construction — the property
//! `tests/engine_equiv.rs` checks on randomized binaries.
//!
//! Since the decode-once refactor the hot loop is also
//! *allocation-free*: facts live in dense `Vec`s indexed by block, the
//! worklist priority is the [`FlowGraph`]'s memoized dense RPO ranks
//! (computed at most once per direction, shared by every analysis that
//! reuses the graph), and each visit recomputes its input into a reused
//! scratch fact and writes its output through
//! [`DataflowSpec::transfer_into`] — no per-visit fact allocation for
//! the bit-vector analyses.
//!
//! # The barrier-free executor
//!
//! [`ParallelExecutor`] pays a full fork/join barrier per round: every
//! round waits for its slowest block before any block of the next round
//! starts, so a skewed propagation chain serializes on the stragglers.
//! [`AsyncExecutor`] drops the barrier entirely. A block is a task;
//! each visit recomputes the block's input from its
//! direction-predecessors' *published* outputs, runs
//! [`DataflowSpec::transfer_into`] into a reused scratch fact, and on
//! change publishes the new output and signals the block's
//! direction-successors — re-enqueued onto the running worker's own
//! Chase–Lev deque, where idle workers steal them.
//!
//! Why is that safe? Two different hazards, two different answers:
//!
//! * **Stale reads are safe by monotonicity.** A visit may read a
//!   predecessor's output an instant before that predecessor publishes
//!   a newer value — exactly the cross-round staleness the round-based
//!   executor already tolerates. The publish-then-signal protocol
//!   guarantees the reader is re-signaled (its [`pba_concurrent::TaskSet`]
//!   state goes dirty-or-queued), so the missed value is re-read on a
//!   later visit; since facts only grow toward the unique least
//!   fixpoint, arriving late costs revisits, never correctness.
//! * **Torn reads are not** — half-old, half-new bytes of a multi-word
//!   fact are not a lattice element at all. Outputs therefore live in
//!   [`pba_concurrent::FactSlots`], whose striped locks make every
//!   publish and read atomic per slot: readers see possibly-stale,
//!   never-torn facts.
//!
//! Termination is the in-flight protocol of
//! [`pba_concurrent::TaskSet`]: workers spin (then yield) until no task
//! is queued or running, which — because successors are signaled
//! *before* a visit retires — can only happen at the fixpoint. Blocks
//! are seeded through a FIFO injector in direction-RPO rank order, so
//! the first sweep visits blocks in the serial executor's priority
//! order and the visit count stays comparable (the `engine` benchmark
//! asserts within 2× of serial on one CPU).
//!
//! Two levels of parallelism mirror the paper's phase structure:
//! *within* a function via [`ParallelExecutor`] / [`AsyncExecutor`],
//! and *across* functions via [`run_all`] / [`run_per_function`] (or
//! their [`crate::ir::BinaryIr`]-backed twins [`run_all_ir`] /
//! [`run_per_function_ir`], which reuse one decoded IR instead of
//! rebuilding it), fanning work over a size-sorted function list on a
//! sized rayon pool (the Listing 7 `schedule(dynamic)` shape).

use crate::ir::{BinaryIr, FuncIr};
use crate::liveness::{liveness_on, LivenessResult};
use crate::reaching::{reaching_defs_on, ReachingDefs};
use crate::stack::{stack_heights_on, StackResult};
use crate::view::CfgView;
use crossbeam::deque::{Injector, Stealer, Worker};
use pba_cfg::order::rpo_ranks_dense;
use pba_cfg::{BlockIndex, EdgeKind};
use pba_concurrent::{FactSlots, TaskSet};
use rayon::prelude::*;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Executor work counters, exposed for benchmarks: visits performed (all
/// executors) and the async executor's enqueue/steal traffic. Monotonic
/// and global; [`stats::reset`] zeroes them between measurement rows.
pub mod stats {
    pub use pba_concurrent::stats::Counter;

    /// Block visits (one input-recompute + transfer), by any executor.
    pub static VISITS: Counter = Counter::new();
    /// Tasks pushed onto an async worker's deque or the seed injector.
    pub static ASYNC_ENQUEUED: Counter = Counter::new();
    /// Tasks an async worker obtained by stealing from a sibling.
    pub static ASYNC_STOLEN: Counter = Counter::new();

    /// Zero all counters (between benchmark iterations).
    pub fn reset() {
        VISITS.reset();
        ASYNC_ENQUEUED.reset();
        ASYNC_STOLEN.reset();
    }
}

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow entry → exits (e.g. reaching definitions, stack height).
    Forward,
    /// Facts flow exits → entry (e.g. liveness).
    Backward,
}

/// A dataflow analysis, described declaratively.
///
/// Implementations must be monotone: `transfer` may only grow (in the
/// lattice order implied by `meet`) when its input grows. Every spec in
/// this crate is; the engine's executor-independence depends on it.
pub trait DataflowSpec {
    /// The lattice element attached to each block boundary.
    type Fact: Clone + PartialEq + Send + Sync;

    /// Which way facts flow.
    fn direction(&self) -> Direction;

    /// The lattice bottom for `block` (the "no information yet" value
    /// every boundary starts from).
    fn bottom(&self, block: u64) -> Self::Fact;

    /// The fact injected at direction-source blocks: the function entry
    /// for forward problems, the exit blocks for backward ones.
    fn boundary(&self, block: u64) -> Self::Fact;

    /// Join `incoming` into `into` (the lattice meet/join).
    fn meet(&self, into: &mut Self::Fact, incoming: &Self::Fact);

    /// Apply `block`'s transfer function to its direction-input fact.
    fn transfer(&self, block: u64, input: &Self::Fact) -> Self::Fact;

    /// Apply `block`'s transfer function, writing the result into `out`
    /// (whose prior contents are arbitrary and must be fully
    /// overwritten). The executors call *this* on their hot path with a
    /// reused scratch fact; the default falls back to [`Self::transfer`]
    /// and costs one fact allocation per visit, so specs whose facts
    /// heap-allocate (bit vectors, sets) should override it with an
    /// in-place computation.
    fn transfer_into(&self, block: u64, input: &Self::Fact, out: &mut Self::Fact) {
        *out = self.transfer(block, input);
    }

    /// Optional edge transfer: adjust the fact flowing along the CFG
    /// edge `src → dst` (of `kind`) before it is met into the receiving
    /// block's input. `fact` is the value leaving the direction-
    /// predecessor (the source block's output for forward problems, the
    /// destination block's output for backward ones). Return `None` for
    /// identity — the default, which costs no clone; specs whose
    /// transfer depends on *how* control reached a block (e.g. the
    /// taken/not-taken side of a guarding branch in [`crate::slice`])
    /// override it.
    fn edge_transfer(
        &self,
        src: u64,
        dst: u64,
        kind: EdgeKind,
        fact: &Self::Fact,
    ) -> Option<Self::Fact> {
        let _ = (src, dst, kind, fact);
        None
    }
}

/// What [`DataflowResults::into_dense`] yields: the shared block list
/// and dense address index, then the dense input and output fact
/// vectors.
pub type DenseResults<F> = (Arc<Vec<u64>>, Arc<BlockIndex>, Vec<F>, Vec<F>);

/// Fixpoint facts per block, in direction-relative terms: `input` is the
/// fact flowing *into* the block (at block entry for forward problems,
/// at block exit for backward ones) and `output` is `transfer(input)`.
///
/// Facts are stored densely, indexed like the [`FlowGraph`]'s block
/// list (shared by `Arc`, so packaging a result allocates nothing per
/// block); [`DataflowResults::input_at`] / [`DataflowResults::output_at`]
/// are the thin address-keyed accessors for consumers that still think
/// in block addresses.
#[derive(Debug, Clone, Default)]
pub struct DataflowResults<F> {
    blocks: Arc<Vec<u64>>,
    index: Arc<BlockIndex>,
    /// Fact flowing into each block (dense, graph order).
    pub input: Vec<F>,
    /// Fact flowing out of each block (dense, graph order).
    pub output: Vec<F>,
}

impl<F> DataflowResults<F> {
    /// Block addresses, in dense-index order (the fact vectors' order).
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Dense index of `block`, if it is in the graph.
    pub fn index_of(&self, block: u64) -> Option<usize> {
        self.index.get(block)
    }

    /// The input fact of `block` (address-keyed compatibility accessor).
    pub fn input_at(&self, block: u64) -> Option<&F> {
        self.index_of(block).map(|i| &self.input[i])
    }

    /// The output fact of `block` (address-keyed compatibility accessor).
    pub fn output_at(&self, block: u64) -> Option<&F> {
        self.index_of(block).map(|i| &self.output[i])
    }

    /// `(block, input fact)` pairs in dense order.
    pub fn iter_input(&self) -> impl Iterator<Item = (u64, &F)> {
        self.blocks.iter().copied().zip(self.input.iter())
    }

    /// `(block, output fact)` pairs in dense order.
    pub fn iter_output(&self) -> impl Iterator<Item = (u64, &F)> {
        self.blocks.iter().copied().zip(self.output.iter())
    }

    /// Decompose into the shared block list/index and the dense fact
    /// vectors — how the client analyses repackage engine results into
    /// their own dense result types without copying.
    pub fn into_dense(self) -> DenseResults<F> {
        (self.blocks, self.index, self.input, self.output)
    }
}

/// Per-direction traversal metadata, computed at most once per graph.
#[derive(Debug)]
struct DirInfo {
    /// `is_source[i]`: does block `i`'s input carry the boundary fact?
    is_source: Vec<bool>,
    /// Worklist priority: rank in the direction-appropriate reverse
    /// postorder, computed directly on dense indices.
    rank: Vec<u32>,
    /// Blocks reachable from the direction's sources: ranks below this
    /// cut form the source-anchored RPO (see [`FlowGraph::entry_rpo`]).
    reachable: usize,
}

/// The CFG shape the executors iterate over, precomputed once per
/// function from a [`CfgView`]: dense indices, successor/predecessor
/// adjacency, the entry block, and (memoized per direction) the
/// RPO ranks the serial worklist prioritizes by. Shared via
/// [`crate::ir::FuncIr`], one graph serves every analysis of a function
/// and the rank computation happens at most once per direction.
#[derive(Debug)]
pub struct FlowGraph {
    /// Block start addresses, in dense-index order (shared with the
    /// results packaged from this graph).
    pub blocks: Arc<Vec<u64>>,
    index: Arc<BlockIndex>,
    succs: Vec<Vec<(usize, EdgeKind)>>,
    preds: Vec<Vec<(usize, EdgeKind)>>,
    entry: Option<usize>,
    fwd: OnceLock<DirInfo>,
    bwd: OnceLock<DirInfo>,
}

impl FlowGraph {
    /// Capture `view`'s intra-procedural shape.
    pub fn build(view: &dyn CfgView) -> FlowGraph {
        let blocks: Vec<u64> = view.blocks().to_vec();
        let entry = view.entry();
        let mut edges = Vec::new();
        for &b in &blocks {
            for &(s, kind) in view.succ_edges(b) {
                edges.push((b, s, kind));
            }
        }
        FlowGraph::from_parts(blocks, entry, &edges)
    }

    /// Assemble a graph from an explicit block list and edge list
    /// (edges whose endpoints are not in `blocks` are dropped). This is
    /// what [`crate::ir::FuncIr`] and the slice's cone restriction use
    /// to build graphs without an intermediate view.
    pub fn from_parts(blocks: Vec<u64>, entry: u64, edges: &[(u64, u64, EdgeKind)]) -> FlowGraph {
        let index = BlockIndex::new(&blocks);
        let mut succs = vec![Vec::new(); blocks.len()];
        let mut preds = vec![Vec::new(); blocks.len()];
        for &(src, dst, kind) in edges {
            if let (Some(i), Some(j)) = (index.get(src), index.get(dst)) {
                succs[i].push((j, kind));
                preds[j].push((i, kind));
            }
        }
        let entry = index.get(entry);
        FlowGraph {
            blocks: Arc::new(blocks),
            index: Arc::new(index),
            succs,
            preds,
            entry,
            fwd: OnceLock::new(),
            bwd: OnceLock::new(),
        }
    }

    /// Dense index of `block`, if present.
    pub fn index_of(&self, block: u64) -> Option<usize> {
        self.index.get(block)
    }

    /// The shared address → dense-id index (the one map every dense
    /// artifact built from this graph keys by).
    pub fn index(&self) -> &Arc<BlockIndex> {
        &self.index
    }

    /// Direction-sources: blocks whose input carries the boundary fact.
    fn sources(&self, dir: Direction) -> Vec<usize> {
        match dir {
            Direction::Forward => self.entry.into_iter().collect(),
            Direction::Backward => {
                (0..self.blocks.len()).filter(|&i| self.succs[i].is_empty()).collect()
            }
        }
    }

    /// Edges pointing into a block, under `dir`.
    fn dir_preds(&self, dir: Direction) -> &[Vec<(usize, EdgeKind)>] {
        match dir {
            Direction::Forward => &self.preds,
            Direction::Backward => &self.succs,
        }
    }

    /// Edges leaving a block, under `dir`.
    fn dir_succs(&self, dir: Direction) -> &[Vec<(usize, EdgeKind)>] {
        match dir {
            Direction::Forward => &self.succs,
            Direction::Backward => &self.preds,
        }
    }

    /// The direction's sources and RPO ranks, computed on first use and
    /// memoized — every later analysis over this graph (and every
    /// executor run) reuses them.
    fn dir_info(&self, dir: Direction) -> &DirInfo {
        let cell = match dir {
            Direction::Forward => &self.fwd,
            Direction::Backward => &self.bwd,
        };
        cell.get_or_init(|| {
            let sources = self.sources(dir);
            let mut is_source = vec![false; self.blocks.len()];
            for &s in &sources {
                is_source[s] = true;
            }
            let (rank, reachable) = rpo_ranks_dense(self.dir_succs(dir), &sources);
            DirInfo { is_source, rank, reachable }
        })
    }

    /// The entry-anchored reverse postorder: every block reachable from
    /// the function entry, in forward RPO. Memoized with the forward
    /// worklist ranks, so dominator construction
    /// (`pba_loops::dominators_on`) shares the one traversal every
    /// forward fixpoint over this graph already paid for.
    pub fn entry_rpo(&self) -> Vec<u64> {
        let info = self.dir_info(Direction::Forward);
        let mut rpo = vec![0u64; info.reachable];
        for (i, &b) in self.blocks.iter().enumerate() {
            let r = info.rank[i] as usize;
            if r < info.reachable {
                rpo[r] = b;
            }
        }
        rpo
    }

    /// Position of `block` in [`FlowGraph::entry_rpo`], or `None` when
    /// the block is absent or unreachable from the entry.
    pub fn entry_rank(&self, block: u64) -> Option<u32> {
        let info = self.dir_info(Direction::Forward);
        let i = self.index.get(block)?;
        let r = info.rank[i];
        ((r as usize) < info.reachable).then_some(r)
    }

    /// Estimated heap bytes of the graph: block list, index, adjacency,
    /// and any memoized direction metadata.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let adjacency: usize = self
            .succs
            .iter()
            .chain(self.preds.iter())
            .map(|v| {
                size_of::<Vec<(usize, EdgeKind)>>() + v.capacity() * size_of::<(usize, EdgeKind)>()
            })
            .sum();
        let dir: usize = [&self.fwd, &self.bwd]
            .iter()
            .filter_map(|c| c.get())
            .map(|d| d.is_source.capacity() + d.rank.capacity() * size_of::<u32>())
            .sum();
        self.blocks.capacity() * size_of::<u64>() + self.index.heap_bytes() + adjacency + dir
    }
}

/// The per-block seed facts (boundary at direction-sources, bottom
/// elsewhere), computed once per run so the hot loop can reset its
/// scratch input by `clone_from` instead of re-asking the spec.
fn seed_facts<S: DataflowSpec>(spec: &S, graph: &FlowGraph, info: &DirInfo) -> Vec<S::Fact> {
    graph
        .blocks
        .iter()
        .enumerate()
        .map(|(i, &b)| if info.is_source[i] { spec.boundary(b) } else { spec.bottom(b) })
        .collect()
}

/// One shared step: recompute block `b`'s input by meeting its
/// direction-predecessors' outputs into `into`, which the caller has
/// already reset to the block's seed fact (boundary at sources, bottom
/// elsewhere) — by `clone_from` on a reused scratch in the serial loop,
/// or by the initializing clone itself in the parallel rounds. Each
/// incoming fact first passes the spec's
/// [`DataflowSpec::edge_transfer`] for the CFG edge it arrives over
/// (identity unless overridden).
fn recompute_input_into<S: DataflowSpec>(
    spec: &S,
    graph: &FlowGraph,
    out: &[S::Fact],
    dir: Direction,
    b: usize,
    into: &mut S::Fact,
) {
    let addr = graph.blocks[b];
    for &(p, kind) in &graph.dir_preds(dir)[b] {
        // Reconstruct the CFG-oriented edge: forward problems receive
        // facts along `p → b`, backward ones along `b → p`.
        let (src, dst) = match dir {
            Direction::Forward => (graph.blocks[p], addr),
            Direction::Backward => (addr, graph.blocks[p]),
        };
        match spec.edge_transfer(src, dst, kind, &out[p]) {
            Some(adjusted) => spec.meet(into, &adjusted),
            None => spec.meet(into, &out[p]),
        }
    }
}

/// Package the dense fact vectors as results sharing the graph's block
/// list and index.
fn package<F>(graph: &FlowGraph, input: Vec<F>, output: Vec<F>) -> DataflowResults<F> {
    DataflowResults {
        blocks: Arc::clone(&graph.blocks),
        index: Arc::clone(&graph.index),
        input,
        output,
    }
}

/// Something that can drive a [`DataflowSpec`] to its fixpoint.
pub trait DataflowExecutor {
    /// Run `spec` over `graph` to the least fixpoint. (`Sync` so specs
    /// can cross executor threads; serial execution doesn't exercise it.)
    fn run<S: DataflowSpec + Sync>(&self, spec: &S, graph: &FlowGraph) -> DataflowResults<S::Fact>;
}

/// Priority-worklist serial executor.
///
/// Blocks are visited in reverse postorder (direction-adjusted, ranks
/// memoized on the graph), the order that settles acyclic regions in
/// one pass; every block is visited at least once so the results cover
/// the whole function. The visit loop owns two scratch facts and writes
/// through [`DataflowSpec::transfer_into`] / `clone_from`, so specs
/// with in-place transfers run the whole fixpoint without allocating.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl DataflowExecutor for SerialExecutor {
    fn run<S: DataflowSpec + Sync>(&self, spec: &S, graph: &FlowGraph) -> DataflowResults<S::Fact> {
        let n = graph.blocks.len();
        let dir = spec.direction();
        let mut input: Vec<S::Fact> = graph.blocks.iter().map(|&b| spec.bottom(b)).collect();
        let mut output: Vec<S::Fact> = graph.blocks.iter().map(|&b| spec.bottom(b)).collect();
        if n == 0 {
            return package(graph, input, output);
        }
        let info = graph.dir_info(dir);
        let seeds = seed_facts(spec, graph, info);

        // Min-heap on RPO rank (BinaryHeap is a max-heap; invert).
        let mut heap: BinaryHeap<(std::cmp::Reverse<u32>, usize)> =
            (0..n).map(|i| (std::cmp::Reverse(info.rank[i]), i)).collect();
        let mut queued = vec![true; n];

        let mut in_scratch = spec.bottom(graph.blocks[0]);
        let mut out_scratch = spec.bottom(graph.blocks[0]);
        while let Some((_, b)) = heap.pop() {
            queued[b] = false;
            stats::VISITS.inc();
            in_scratch.clone_from(&seeds[b]);
            recompute_input_into(spec, graph, &output, dir, b, &mut in_scratch);
            spec.transfer_into(graph.blocks[b], &in_scratch, &mut out_scratch);
            input[b].clone_from(&in_scratch);
            if out_scratch != output[b] {
                std::mem::swap(&mut output[b], &mut out_scratch);
                for &(s, _) in &graph.dir_succs(dir)[b] {
                    if !queued[s] {
                        queued[s] = true;
                        heap.push((std::cmp::Reverse(info.rank[s]), s));
                    }
                }
            }
        }
        package(graph, input, output)
    }
}

/// A raw slot pointer the round executor hands to its parallel body:
/// batch indices are distinct, so each task has exclusive access to its
/// own slots (`input[b]`, `round_out[b]`) while the snapshot vectors are
/// only read.
struct SlotPtr<T>(*mut T);
unsafe impl<T: Send> Send for SlotPtr<T> {}
unsafe impl<T: Send> Sync for SlotPtr<T> {}
impl<T> Clone for SlotPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SlotPtr<T> {}
impl<T> SlotPtr<T> {
    /// Get the pointer (method access keeps closures capturing the
    /// whole Send/Sync wrapper, not the raw field).
    fn get(self) -> *mut T {
        self.0
    }
}

/// Round-based parallel executor (the shape of the
/// `gabizon103/parallel-dataflow` exemplar): each round recomputes every
/// dirty block from a snapshot of the current outputs on a rayon pool,
/// then merges and marks direction-successors of changed blocks dirty.
///
/// Reads within a round may see the previous round's facts; monotonicity
/// makes that a matter of round count, not of the fixpoint reached.
///
/// This executor is the ablation baseline the barrier-free
/// [`AsyncExecutor`] is measured against, so its constant factors are
/// kept honest: the batch list, the next-round list, and the per-round
/// result facts are all buffers reused across rounds — a round
/// allocates no fact and no worklist storage. Each round's results are
/// written in place (inputs directly, outputs into a dense scratch
/// vector swapped element-wise on change during the merge).
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelExecutor {
    /// Worker threads for the intra-function rounds. 0 = inherit the
    /// ambient rayon context (no pool is built — the cheap, composable
    /// default under an enclosing `install`); an explicit count builds a
    /// dedicated pool per `run`, which is for ablations, not hot paths.
    pub threads: usize,
}

impl DataflowExecutor for ParallelExecutor {
    fn run<S: DataflowSpec + Sync>(&self, spec: &S, graph: &FlowGraph) -> DataflowResults<S::Fact> {
        let n = graph.blocks.len();
        let dir = spec.direction();
        let mut input: Vec<S::Fact> = graph.blocks.iter().map(|&b| spec.bottom(b)).collect();
        let mut output: Vec<S::Fact> = graph.blocks.iter().map(|&b| spec.bottom(b)).collect();
        if n == 0 {
            return package(graph, input, output);
        }
        let info = graph.dir_info(dir);
        let seeds = seed_facts(spec, graph, info);

        let pool = match self.threads {
            0 => None,
            t => Some(rayon::ThreadPoolBuilder::new().num_threads(t).build().expect("pool")),
        };

        // Round buffers, allocated once: the current batch, the next
        // batch (deduplicated by `queued`), and a dense scratch vector
        // the round's outputs land in before the merge swaps changed
        // facts into `output`.
        let mut batch: Vec<usize> = (0..n).collect();
        let mut next: Vec<usize> = Vec::with_capacity(n);
        let mut queued = vec![false; n];
        let mut round_out: Vec<S::Fact> = graph.blocks.iter().map(|&b| spec.bottom(b)).collect();

        while !batch.is_empty() {
            let inp_ptr = SlotPtr(input.as_mut_ptr());
            let out_ptr = SlotPtr(round_out.as_mut_ptr());
            let seeds_ref = &seeds;
            let output_ref = &output;
            let batch_ref = &batch;
            let round = || {
                batch_ref.par_iter().for_each(|&b| {
                    stats::VISITS.inc();
                    // Safety: batch indices are distinct (the `queued`
                    // flags deduplicate), so slot `b` of each buffer is
                    // written by exactly one task; `output` and `seeds`
                    // are only read.
                    let inp = unsafe { &mut *inp_ptr.get().add(b) };
                    let outp = unsafe { &mut *out_ptr.get().add(b) };
                    inp.clone_from(&seeds_ref[b]);
                    recompute_input_into(spec, graph, output_ref, dir, b, inp);
                    spec.transfer_into(graph.blocks[b], inp, outp);
                });
            };
            match &pool {
                Some(p) => p.install(round),
                None => round(),
            }
            next.clear();
            for &b in &batch {
                queued[b] = false;
            }
            for &b in &batch {
                if round_out[b] != output[b] {
                    std::mem::swap(&mut output[b], &mut round_out[b]);
                    for &(s, _) in &graph.dir_succs(dir)[b] {
                        if !queued[s] {
                            queued[s] = true;
                            next.push(s);
                        }
                    }
                }
            }
            std::mem::swap(&mut batch, &mut next);
        }
        package(graph, input, output)
    }
}

/// Barrier-free work-stealing executor: the per-block worklist on
/// Chase–Lev deques described in the module docs' third-executor
/// section. A block is a task; visits publish outputs through
/// [`pba_concurrent::FactSlots`] and re-enqueue direction-successors
/// onto the running worker's own deque (idle workers steal);
/// termination is [`pba_concurrent::TaskSet`]'s in-flight protocol.
///
/// Interchangeable with [`SerialExecutor`] / [`ParallelExecutor`] by
/// monotonicity (unique least fixpoint); preferable to the round-based
/// executor on skewed propagation chains, which no longer wait on a
/// per-round barrier.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsyncExecutor {
    /// Worker count. 0 = inherit the ambient rayon context (the cheap,
    /// composable default under an enclosing `install`); an explicit
    /// count builds a dedicated pool per `run`, which is for ablations,
    /// not hot paths.
    pub threads: usize,
}

impl DataflowExecutor for AsyncExecutor {
    fn run<S: DataflowSpec + Sync>(&self, spec: &S, graph: &FlowGraph) -> DataflowResults<S::Fact> {
        if graph.blocks.is_empty() {
            return package(graph, Vec::new(), Vec::new());
        }
        match self.threads {
            0 => async_fixpoint(spec, graph),
            t => {
                let pool =
                    rayon::ThreadPoolBuilder::new().num_threads(t).build().expect("async pool");
                pool.install(|| async_fixpoint(spec, graph))
            }
        }
    }
}

/// [`recompute_input_into`] against concurrently-published outputs: each
/// predecessor fact is read (and edge-adjusted, and met) under its slot's
/// stripe lock, so the value folded in is possibly stale, never torn.
fn recompute_input_from_slots<S: DataflowSpec>(
    spec: &S,
    graph: &FlowGraph,
    out: &FactSlots<S::Fact>,
    dir: Direction,
    b: usize,
    into: &mut S::Fact,
) {
    let addr = graph.blocks[b];
    for &(p, kind) in &graph.dir_preds(dir)[b] {
        let (src, dst) = match dir {
            Direction::Forward => (graph.blocks[p], addr),
            Direction::Backward => (addr, graph.blocks[p]),
        };
        out.with(p, |fact| match spec.edge_transfer(src, dst, kind, fact) {
            Some(adjusted) => spec.meet(into, &adjusted),
            None => spec.meet(into, fact),
        });
    }
}

/// The barrier-free fixpoint on the current rayon registry: one worker
/// loop per available thread, run as scope tasks so nesting under
/// [`run_per_function`]'s pool composes (an occupied pool degrades to
/// fewer active workers, never deadlocks — any single worker loop can
/// drain the whole graph alone).
fn async_fixpoint<S: DataflowSpec + Sync>(spec: &S, graph: &FlowGraph) -> DataflowResults<S::Fact> {
    let n = graph.blocks.len();
    let dir = spec.direction();
    let info = graph.dir_info(dir);
    let seeds = seed_facts(spec, graph, info);
    let outputs: FactSlots<S::Fact> =
        FactSlots::new(graph.blocks.iter().map(|&b| spec.bottom(b)).collect());
    let tasks = TaskSet::new(n);
    let injector: Injector<usize> = Injector::new();
    let abort = AtomicBool::new(false);

    // Seed every block through the FIFO injector in direction-RPO rank
    // order: the workers' first sweep then visits blocks in the serial
    // executor's priority order, which settles acyclic regions in one
    // pass and keeps the total visit count comparable to serial.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| info.rank[i]);
    for i in order {
        let push = tasks.signal(i);
        debug_assert!(push, "seeding an idle task always enqueues");
        injector.push(i);
        stats::ASYNC_ENQUEUED.inc();
    }

    let workers = rayon::current_num_threads().min(n).max(1);
    let deques: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<usize>> = deques.iter().map(|d| d.stealer()).collect();
    {
        let (seeds, outputs, tasks, injector, stealers, abort) =
            (&seeds, &outputs, &tasks, &injector, &stealers[..], &abort);
        rayon::scope(|s| {
            for (w, deque) in deques.into_iter().enumerate() {
                s.spawn(move |_| {
                    async_worker(
                        spec, graph, dir, seeds, outputs, tasks, injector, stealers, abort, deque,
                        w,
                    );
                });
            }
        });
    }

    let output = outputs.into_inner();
    // Final input pass: recompute every block's input from the settled
    // outputs. The serial executor's recorded inputs equal this meet as
    // well (a later predecessor change would have re-enqueued and
    // revisited the block), so results stay byte-identical across
    // executors. `seeds` is consumed as the starting values.
    let mut input = seeds;
    for (b, inp) in input.iter_mut().enumerate() {
        recompute_input_into(spec, graph, &output, dir, b, inp);
    }
    package(graph, input, output)
}

/// One async worker loop: pop own deque (LIFO), else take a seed from
/// the injector (FIFO), else steal from a sibling; visit until the
/// task set drains.
#[allow(clippy::too_many_arguments)]
fn async_worker<S: DataflowSpec + Sync>(
    spec: &S,
    graph: &FlowGraph,
    dir: Direction,
    seeds: &[S::Fact],
    outputs: &FactSlots<S::Fact>,
    tasks: &TaskSet,
    injector: &Injector<usize>,
    stealers: &[Stealer<usize>],
    abort: &AtomicBool,
    deque: Worker<usize>,
    w: usize,
) {
    // A panicking visit (spec code) would leave its block claimed
    // forever and sibling workers spinning on a count that can never
    // drain; flag them down before the unwind leaves this frame, then
    // let rayon's scope propagate the panic.
    struct AbortOnPanic<'a>(&'a AtomicBool);
    impl Drop for AbortOnPanic<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.store(true, Ordering::SeqCst);
            }
        }
    }
    let _guard = AbortOnPanic(abort);

    let first = graph.blocks[0];
    let mut in_scratch = spec.bottom(first);
    let mut out_scratch = spec.bottom(first);
    loop {
        if abort.load(Ordering::SeqCst) {
            return;
        }
        let next = deque.pop().or_else(|| injector.steal().success()).or_else(|| {
            for off in 1..stealers.len() {
                let j = (w + off) % stealers.len();
                if let Some(t) = stealers[j].steal().success() {
                    stats::ASYNC_STOLEN.inc();
                    return Some(t);
                }
            }
            None
        });
        let Some(b) = next else {
            if tasks.in_flight() == 0 {
                return;
            }
            std::thread::yield_now();
            continue;
        };
        // Claim before reading inputs: a predecessor publishing after
        // this point marks the block dirty and forces a re-visit, so no
        // published value can be missed for good.
        tasks.claim(b);
        stats::VISITS.inc();
        in_scratch.clone_from(&seeds[b]);
        recompute_input_from_slots(spec, graph, outputs, dir, b, &mut in_scratch);
        spec.transfer_into(graph.blocks[b], &in_scratch, &mut out_scratch);
        // Publish, then signal, then retire — in that order: successors
        // signaled here are counted in-flight before this block's count
        // can drop, so the in-flight count only reaches zero at the
        // fixpoint.
        if outputs.publish_if_changed(b, &out_scratch) {
            for &(s, _) in &graph.dir_succs(dir)[b] {
                if tasks.signal(s) {
                    deque.push(s);
                    stats::ASYNC_ENQUEUED.inc();
                }
            }
        }
        if tasks.finish(b) {
            deque.push(b);
            stats::ASYNC_ENQUEUED.inc();
        }
    }
}

/// Default block count at which [`ExecutorKind::Auto`] switches a
/// function from the serial to a parallel executor — see
/// [`auto_block_threshold`] for the runtime override. Below it, task
/// and queue overhead dwarfs the transfer work; above it, the worklist
/// is wide enough for idle pool workers to steal a useful share (the
/// `pba-gen` Skewed-profile giant functions the `steal` benchmark
/// measures sit well past it).
pub const AUTO_BLOCK_THRESHOLD: usize = 2048;

/// The block-count threshold [`ExecutorKind::Auto`] actually uses:
/// [`AUTO_BLOCK_THRESHOLD`] unless the `PBA_AUTO_THRESHOLD` environment
/// variable overrides it (read once, first use; non-numeric or zero
/// values are ignored). The override exists so the re-tune on real
/// multi-core hardware is a shell variable, not a rebuild — this
/// container pins measurements to one CPU, where the crossover cannot
/// be observed (see the ROADMAP standing constraints).
pub fn auto_block_threshold() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("PBA_AUTO_THRESHOLD")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or(AUTO_BLOCK_THRESHOLD)
    })
}

/// Executor selection for APIs that take it as a runtime value.
#[derive(Debug, Clone, Copy, Default)]
pub enum ExecutorKind {
    /// [`SerialExecutor`].
    #[default]
    Serial,
    /// [`ParallelExecutor`] with its thread count (0 = inherit the
    /// ambient rayon context — see [`ParallelExecutor::threads`]. Since
    /// the work-stealing shim, `Parallel(0)` composes with
    /// [`run_per_function`]: a worker's nested rounds split into its
    /// own deque, where idle pool workers steal them).
    Parallel(usize),
    /// [`AsyncExecutor`] with its thread count (same 0 = ambient
    /// convention as `Parallel`).
    Async(usize),
    /// Pick per function: [`SerialExecutor`] below
    /// [`auto_block_threshold`] blocks, [`AsyncExecutor`] (ambient
    /// threads) at or above it. The right default for whole-binary
    /// drivers on skewed workloads: the one giant function goes on the
    /// barrier-free worklist (stealable, no per-round join), the
    /// thousands of small ones stay on the cheap serial worklist. Until
    /// this PR the large side was the round-based [`ParallelExecutor`];
    /// the async executor replaces it here because it keeps the same
    /// stealing behavior while dropping the per-round barrier the
    /// threshold was partly compensating for — expect the re-tune on
    /// real cores (via `PBA_AUTO_THRESHOLD`) to land on a *lower*
    /// crossover than the round-based one would.
    Auto,
}

impl ExecutorKind {
    /// Run `spec` over `graph` with the selected executor.
    pub fn run<S: DataflowSpec + Sync>(
        &self,
        spec: &S,
        graph: &FlowGraph,
    ) -> DataflowResults<S::Fact> {
        match *self {
            ExecutorKind::Serial => SerialExecutor.run(spec, graph),
            ExecutorKind::Parallel(threads) => ParallelExecutor { threads }.run(spec, graph),
            ExecutorKind::Async(threads) => AsyncExecutor { threads }.run(spec, graph),
            ExecutorKind::Auto => {
                if graph.blocks.len() >= auto_block_threshold() {
                    AsyncExecutor { threads: 0 }.run(spec, graph)
                } else {
                    SerialExecutor.run(spec, graph)
                }
            }
        }
    }
}

/// The three standard per-function analyses, engine-computed.
#[derive(Debug)]
pub struct FuncAnalyses {
    /// Backward register liveness (AC6).
    pub liveness: LivenessResult,
    /// Forward reaching definitions.
    pub reaching: ReachingDefs,
    /// Forward stack-height analysis.
    pub stack: StackResult,
}

impl FuncAnalyses {
    /// Bytes of heap owned by the three fact sets. The block lists and
    /// indices these results carry are `Arc`-shared with the function's
    /// graph and counted once with the IR, not here.
    pub fn heap_bytes(&self) -> usize {
        self.liveness.heap_bytes() + self.reaching.heap_bytes() + self.stack.heap_bytes()
    }
}

/// The three standard analyses of one function, off its IR — one
/// decoded arena, one graph, memoized RPO ranks shared by all three
/// fixpoints.
fn func_analyses(ir: &FuncIr, exec: ExecutorKind) -> FuncAnalyses {
    let graph = ir.graph();
    FuncAnalyses {
        liveness: liveness_on(ir, graph, exec),
        reaching: reaching_defs_on(ir, graph, exec),
        stack: stack_heights_on(ir, graph, exec),
    }
}

/// Run the three standard analyses over every function of a finalized
/// CFG, fanning functions across a rayon pool of `threads` workers.
///
/// This is the paper's "parallel analysis over a read-only CFG" phase:
/// functions are size-sorted (largest first) for load balance, and each
/// function runs the [`SerialExecutor`] — across-function parallelism is
/// where the throughput is; use [`run_all_with`] to pick a different
/// per-function executor. Each call decodes every function's blocks
/// once; callers holding a [`BinaryIr`] should use [`run_all_ir`] and
/// decode *nothing*.
pub fn run_all(cfg: &pba_cfg::Cfg, threads: usize) -> HashMap<u64, FuncAnalyses> {
    run_all_with(cfg, threads, ExecutorKind::Serial)
}

/// [`run_all`] with an explicit per-function executor.
pub fn run_all_with(
    cfg: &pba_cfg::Cfg,
    threads: usize,
    exec: ExecutorKind,
) -> HashMap<u64, FuncAnalyses> {
    run_per_function(cfg, threads, |ir| func_analyses(ir, exec))
}

/// [`run_all_with`] over a prebuilt [`BinaryIr`]: no decoding, no graph
/// building — the analyses only run fixpoints.
pub fn run_all_ir(ir: &BinaryIr, threads: usize, exec: ExecutorKind) -> HashMap<u64, FuncAnalyses> {
    run_per_function_ir(ir, threads, |fir| func_analyses(fir, exec))
}

/// The whole-binary fan-out underneath [`run_all`]: apply `analyze` to
/// the IR of every function, size-sorted largest-first across a rayon
/// pool of `threads` workers, keyed by function entry. Each function's
/// [`FuncIr`] is built (blocks decoded once) inside the closure and
/// dropped with it; callers that keep the IRs should build a
/// [`BinaryIr`] and use [`run_per_function_ir`].
///
/// Consumers needing only one analysis (BinFeat wants liveness,
/// hpcstruct phase 6 wants stack heights) go through this directly
/// rather than paying for all three.
pub fn run_per_function<T: Send>(
    cfg: &pba_cfg::Cfg,
    threads: usize,
    analyze: impl Fn(&FuncIr) -> T + Sync,
) -> HashMap<u64, T> {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("run_all pool");
    let mut funcs: Vec<&pba_cfg::Function> = cfg.functions.values().collect();
    // Largest first: starting the giants early gives the stealing pool
    // the whole run to rebalance around them. (The size-striping this
    // list used to need under the static-chunking shim is gone — the
    // deque-based pool splits the index range and idle workers steal,
    // so skew is handled by the scheduler, not the submission order.)
    funcs.sort_by_key(|f| std::cmp::Reverse(f.blocks.len()));
    let results: Vec<(u64, T)> = pool.install(|| {
        funcs
            .par_iter()
            .map(|f| {
                let ir = FuncIr::build(cfg, f);
                (f.entry, analyze(&ir))
            })
            .collect()
    });
    results.into_iter().collect()
}

/// [`run_per_function`] over a prebuilt [`BinaryIr`]: the same
/// largest-first fan-out, but every closure borrows its function's
/// already-decoded IR instead of rebuilding it.
pub fn run_per_function_ir<T: Send>(
    ir: &BinaryIr,
    threads: usize,
    analyze: impl Fn(&FuncIr) -> T + Sync,
) -> HashMap<u64, T> {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("run_all pool");
    let mut funcs: Vec<&FuncIr> = ir.funcs().collect();
    funcs.sort_by_key(|f| std::cmp::Reverse(f.blocks().len()));
    let results: Vec<(u64, T)> =
        pool.install(|| funcs.par_iter().map(|fir| (fir.entry(), analyze(fir))).collect());
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::VecView;
    use pba_cfg::EdgeKind;
    use pba_concurrent::Counter;

    /// A toy forward "block counting" spec: each block's output is
    /// `max(inputs) + 1`; the fixpoint is the longest acyclic distance
    /// from entry, saturating on cycles at the block count (capped).
    /// Counts its `transfer_into` calls so tests can pin that the
    /// executors actually drive the in-place path.
    struct Depth {
        cap: u32,
        into_calls: Counter,
    }

    impl Depth {
        fn new(cap: u32) -> Depth {
            Depth { cap, into_calls: Counter::new() }
        }
    }

    impl DataflowSpec for Depth {
        type Fact = u32;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn bottom(&self, _b: u64) -> u32 {
            0
        }
        fn boundary(&self, _b: u64) -> u32 {
            1
        }
        fn meet(&self, into: &mut u32, incoming: &u32) {
            *into = (*into).max(*incoming);
        }
        fn transfer(&self, _b: u64, input: &u32) -> u32 {
            (*input + 1).min(self.cap)
        }
        fn transfer_into(&self, b: u64, input: &u32, out: &mut u32) {
            self.into_calls.inc();
            *out = self.transfer(b, input);
        }
    }

    fn diamond() -> VecView {
        VecView::new(
            1,
            vec![(1, 2, vec![]), (2, 3, vec![]), (3, 4, vec![]), (4, 5, vec![])],
            vec![
                (1, 2, EdgeKind::CondTaken),
                (1, 3, EdgeKind::CondNotTaken),
                (2, 4, EdgeKind::Direct),
                (3, 4, EdgeKind::Fallthrough),
            ],
        )
    }

    #[test]
    fn serial_reaches_expected_fixpoint() {
        let view = diamond();
        let graph = FlowGraph::build(&view);
        let r = SerialExecutor.run(&Depth::new(100), &graph);
        assert_eq!(r.input_at(1), Some(&1));
        assert_eq!(r.output_at(1), Some(&2));
        assert_eq!(r.input_at(4), Some(&3), "join takes the max over both arms");
    }

    #[test]
    fn executors_agree_on_cyclic_graph_and_use_transfer_into() {
        let mut view = diamond();
        view.edges.push((4, 1, EdgeKind::Direct)); // loop back
        let graph = FlowGraph::build(&view);
        let spec = Depth::new(17);
        let a = SerialExecutor.run(&spec, &graph);
        let serial_calls = spec.into_calls.get();
        assert!(serial_calls > 0, "serial hot loop goes through transfer_into");
        let b = ParallelExecutor { threads: 4 }.run(&spec, &graph);
        let parallel_calls = spec.into_calls.get();
        assert!(parallel_calls > serial_calls, "parallel rounds too");
        let c = AsyncExecutor { threads: 4 }.run(&spec, &graph);
        assert!(spec.into_calls.get() > parallel_calls, "async visits too");
        for &blk in graph.blocks.iter() {
            assert_eq!(a.input_at(blk), b.input_at(blk));
            assert_eq!(a.output_at(blk), b.output_at(blk));
            assert_eq!(a.input_at(blk), c.input_at(blk), "async input diverges at {blk}");
            assert_eq!(a.output_at(blk), c.output_at(blk), "async output diverges at {blk}");
        }
    }

    #[test]
    fn async_matches_serial_across_thread_counts() {
        let mut view = diamond();
        view.edges.push((4, 1, EdgeKind::Direct)); // loop back
        let graph = FlowGraph::build(&view);
        let spec = Depth::new(17);
        let serial = SerialExecutor.run(&spec, &graph);
        for threads in [1usize, 2, 4, 8] {
            let r = AsyncExecutor { threads }.run(&spec, &graph);
            for &blk in graph.blocks.iter() {
                assert_eq!(serial.input_at(blk), r.input_at(blk), "{threads} threads, block {blk}");
                assert_eq!(serial.output_at(blk), r.output_at(blk), "{threads} threads");
            }
        }
    }

    #[test]
    fn async_visit_count_stays_near_serial_on_a_chain() {
        // On one worker, seeds drain from the FIFO injector in rank
        // order, so the first sweep settles a chain exactly like the
        // serial priority worklist: the visit count must not run away.
        let n = 512u64;
        let view = VecView::new(
            1,
            (1..=n).map(|b| (b, b + 1, vec![])).collect(),
            (1..n).map(|b| (b, b + 1, EdgeKind::Direct)).collect(),
        );
        let graph = FlowGraph::build(&view);
        // Per-instance transfer counters (the global `stats` counters
        // are shared with concurrently-running tests).
        let serial_spec = Depth::new(u32::MAX);
        SerialExecutor.run(&serial_spec, &graph);
        let serial_visits = serial_spec.into_calls.get();
        let async_spec = Depth::new(u32::MAX);
        AsyncExecutor { threads: 1 }.run(&async_spec, &graph);
        let async_visits = async_spec.into_calls.get();
        assert!(
            async_visits <= serial_visits * 2,
            "async {async_visits} visits vs serial {serial_visits}: runaway re-enqueue"
        );
    }

    #[test]
    fn auto_matches_serial_on_both_sides_of_the_threshold() {
        // Small graph (serial side).
        let view = diamond();
        let graph = FlowGraph::build(&view);
        let spec = Depth::new(100);
        let serial = SerialExecutor.run(&spec, &graph);
        let auto = ExecutorKind::Auto.run(&spec, &graph);
        for &blk in graph.blocks.iter() {
            assert_eq!(serial.input_at(blk), auto.input_at(blk));
            assert_eq!(serial.output_at(blk), auto.output_at(blk));
        }

        // A chain longer than the threshold (parallel side).
        let n = AUTO_BLOCK_THRESHOLD as u64 + 10;
        let view = VecView::new(
            1,
            (1..=n).map(|b| (b, b + 1, vec![])).collect(),
            (1..n).map(|b| (b, b + 1, EdgeKind::Direct)).collect(),
        );
        let graph = FlowGraph::build(&view);
        assert!(graph.blocks.len() >= AUTO_BLOCK_THRESHOLD);
        let spec = Depth::new(u32::MAX);
        let serial = SerialExecutor.run(&spec, &graph);
        let auto = ExecutorKind::Auto.run(&spec, &graph);
        for &blk in graph.blocks.iter() {
            assert_eq!(serial.input_at(blk), auto.input_at(blk));
            assert_eq!(serial.output_at(blk), auto.output_at(blk));
        }
    }

    #[test]
    fn backward_sources_are_exit_blocks() {
        let view = diamond();
        let graph = FlowGraph::build(&view);
        assert_eq!(
            graph.dir_info(Direction::Backward).is_source,
            vec![false, false, false, true],
            "block 4 at dense index 3"
        );
        assert_eq!(graph.dir_info(Direction::Forward).is_source, vec![true, false, false, false]);
    }

    #[test]
    fn rank_memoization_computes_once_per_direction() {
        let view = diamond();
        let graph = FlowGraph::build(&view);
        let a = graph.dir_info(Direction::Forward) as *const DirInfo;
        let b = graph.dir_info(Direction::Forward) as *const DirInfo;
        assert_eq!(a, b, "same memoized DirInfo");
    }
}
