//! The generic dataflow engine: one fixpoint, many analyses, two
//! executors.
//!
//! The paper's thesis is that once the CFG is finalized and read-only,
//! *any* client analysis can run in parallel. This module is the
//! machinery that makes that true for dataflow analyses rather than
//! per-analysis luck: an analysis describes itself as a
//! [`DataflowSpec`] — direction, lattice bottom, boundary fact, meet,
//! and block transfer — and an executor drives the Kildall worklist to
//! the least fixpoint. Because every spec here is monotone over a
//! finite-height lattice, the fixpoint is *unique*, so the
//! [`SerialExecutor`] (priority worklist in reverse postorder, from
//! [`pba_cfg::order`]) and the [`ParallelExecutor`] (round-based rayon
//! worklist, after the `parallel-dataflow` exemplar) are interchangeable
//! by construction — the property `tests/engine_equiv.rs` checks on
//! randomized binaries.
//!
//! Two levels of parallelism mirror the paper's phase structure:
//! *within* a function via [`ParallelExecutor`], and *across* functions
//! via [`run_all`] / [`run_per_function`], which fan work over a
//! size-sorted function list on a sized rayon pool (the Listing 7
//! `schedule(dynamic)` shape). BinFeat's data-flow stage and
//! hpcstruct's phase 6 go through [`run_per_function`] so each pays
//! for exactly the analysis it consumes.

use crate::liveness::{liveness_on, LivenessResult};
use crate::reaching::{reaching_defs_on, ReachingDefs};
use crate::stack::{stack_heights_on, StackResult};
use crate::view::{CfgView, FuncView};
use pba_cfg::order::reverse_postorder;
use pba_cfg::EdgeKind;
use rayon::prelude::*;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow entry → exits (e.g. reaching definitions, stack height).
    Forward,
    /// Facts flow exits → entry (e.g. liveness).
    Backward,
}

/// A dataflow analysis, described declaratively.
///
/// Implementations must be monotone: `transfer` may only grow (in the
/// lattice order implied by `meet`) when its input grows. Every spec in
/// this crate is; the engine's executor-independence depends on it.
pub trait DataflowSpec {
    /// The lattice element attached to each block boundary.
    type Fact: Clone + PartialEq + Send + Sync;

    /// Which way facts flow.
    fn direction(&self) -> Direction;

    /// The lattice bottom for `block` (the "no information yet" value
    /// every boundary starts from).
    fn bottom(&self, block: u64) -> Self::Fact;

    /// The fact injected at direction-source blocks: the function entry
    /// for forward problems, the exit blocks for backward ones.
    fn boundary(&self, block: u64) -> Self::Fact;

    /// Join `incoming` into `into` (the lattice meet/join).
    fn meet(&self, into: &mut Self::Fact, incoming: &Self::Fact);

    /// Apply `block`'s transfer function to its direction-input fact.
    fn transfer(&self, block: u64, input: &Self::Fact) -> Self::Fact;

    /// Optional edge transfer: adjust the fact flowing along the CFG
    /// edge `src → dst` (of `kind`) before it is met into the receiving
    /// block's input. `fact` is the value leaving the direction-
    /// predecessor (the source block's output for forward problems, the
    /// destination block's output for backward ones). Return `None` for
    /// identity — the default, which costs no clone; specs whose
    /// transfer depends on *how* control reached a block (e.g. the
    /// taken/not-taken side of a guarding branch in [`crate::slice`])
    /// override it.
    fn edge_transfer(
        &self,
        src: u64,
        dst: u64,
        kind: EdgeKind,
        fact: &Self::Fact,
    ) -> Option<Self::Fact> {
        let _ = (src, dst, kind, fact);
        None
    }
}

/// Fixpoint facts per block, in direction-relative terms: `input` is the
/// fact flowing *into* the block (at block entry for forward problems,
/// at block exit for backward ones) and `output` is `transfer(input)`.
#[derive(Debug, Clone, Default)]
pub struct DataflowResults<F> {
    /// Fact flowing into each block (direction-relative).
    pub input: HashMap<u64, F>,
    /// Fact flowing out of each block (direction-relative).
    pub output: HashMap<u64, F>,
}

/// The CFG shape the executors iterate over, precomputed once per
/// function from a [`CfgView`]: dense indices, successor/predecessor
/// adjacency and the entry block.
pub struct FlowGraph {
    /// Block start addresses, in dense-index order.
    pub blocks: Vec<u64>,
    index: HashMap<u64, usize>,
    succs: Vec<Vec<(usize, EdgeKind)>>,
    preds: Vec<Vec<(usize, EdgeKind)>>,
    entry: Option<usize>,
}

impl FlowGraph {
    /// Capture `view`'s intra-procedural shape.
    pub fn build(view: &dyn CfgView) -> FlowGraph {
        let blocks = view.blocks();
        let index: HashMap<u64, usize> = blocks.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let mut succs = vec![Vec::new(); blocks.len()];
        let mut preds = vec![Vec::new(); blocks.len()];
        for (i, &b) in blocks.iter().enumerate() {
            for (s, kind) in view.succ_edges(b) {
                if let Some(&j) = index.get(&s) {
                    succs[i].push((j, kind));
                    preds[j].push((i, kind));
                }
            }
        }
        let entry = index.get(&view.entry()).copied();
        FlowGraph { blocks, index, succs, preds, entry }
    }

    /// Direction-sources: blocks whose input carries the boundary fact.
    fn sources(&self, dir: Direction) -> Vec<usize> {
        match dir {
            Direction::Forward => self.entry.into_iter().collect(),
            Direction::Backward => {
                (0..self.blocks.len()).filter(|&i| self.succs[i].is_empty()).collect()
            }
        }
    }

    /// Edges pointing into a block, under `dir`.
    fn dir_preds(&self, dir: Direction) -> &[Vec<(usize, EdgeKind)>] {
        match dir {
            Direction::Forward => &self.preds,
            Direction::Backward => &self.succs,
        }
    }

    /// Edges leaving a block, under `dir`.
    fn dir_succs(&self, dir: Direction) -> &[Vec<(usize, EdgeKind)>] {
        match dir {
            Direction::Forward => &self.succs,
            Direction::Backward => &self.preds,
        }
    }

    /// Worklist priority: rank in the direction-appropriate reverse
    /// postorder (so along acyclic paths a block's inputs settle before
    /// the block is visited).
    fn priority(&self, dir: Direction) -> Vec<usize> {
        let roots: Vec<u64> = self.sources(dir).iter().map(|&i| self.blocks[i]).collect();
        let dsuccs = self.dir_succs(dir);
        let succs_of = |b: u64| -> Vec<u64> {
            dsuccs[self.index[&b]].iter().map(|&(j, _)| self.blocks[j]).collect()
        };
        let rpo = reverse_postorder(&self.blocks, &roots, &succs_of);
        let mut rank = vec![0usize; self.blocks.len()];
        for (r, b) in rpo.iter().enumerate() {
            rank[self.index[b]] = r;
        }
        rank
    }
}

/// One shared step: recompute block `b`'s input by meeting its
/// direction-predecessors' outputs (plus the boundary fact at sources).
/// Each incoming fact first passes the spec's [`DataflowSpec::edge_transfer`]
/// for the CFG edge it arrives over (identity unless overridden).
fn recompute_input<S: DataflowSpec>(
    spec: &S,
    graph: &FlowGraph,
    is_source: &[bool],
    out: &[S::Fact],
    dir: Direction,
    b: usize,
) -> S::Fact {
    let addr = graph.blocks[b];
    let mut input = if is_source[b] { spec.boundary(addr) } else { spec.bottom(addr) };
    for &(p, kind) in &graph.dir_preds(dir)[b] {
        // Reconstruct the CFG-oriented edge: forward problems receive
        // facts along `p → b`, backward ones along `b → p`.
        let (src, dst) = match dir {
            Direction::Forward => (graph.blocks[p], addr),
            Direction::Backward => (addr, graph.blocks[p]),
        };
        match spec.edge_transfer(src, dst, kind, &out[p]) {
            Some(adjusted) => spec.meet(&mut input, &adjusted),
            None => spec.meet(&mut input, &out[p]),
        }
    }
    input
}

/// Package the dense fact vectors as address-keyed results.
fn package<F: Clone>(graph: &FlowGraph, input: Vec<F>, output: Vec<F>) -> DataflowResults<F> {
    DataflowResults {
        input: graph.blocks.iter().copied().zip(input).collect(),
        output: graph.blocks.iter().copied().zip(output).collect(),
    }
}

/// Something that can drive a [`DataflowSpec`] to its fixpoint.
pub trait DataflowExecutor {
    /// Run `spec` over `graph` to the least fixpoint. (`Sync` so specs
    /// can cross executor threads; serial execution doesn't exercise it.)
    fn run<S: DataflowSpec + Sync>(&self, spec: &S, graph: &FlowGraph) -> DataflowResults<S::Fact>;
}

/// Priority-worklist serial executor.
///
/// Blocks are visited in reverse postorder (direction-adjusted), the
/// order that settles acyclic regions in one pass; every block is
/// visited at least once so the results cover the whole function.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExecutor;

impl DataflowExecutor for SerialExecutor {
    fn run<S: DataflowSpec + Sync>(&self, spec: &S, graph: &FlowGraph) -> DataflowResults<S::Fact> {
        let n = graph.blocks.len();
        let dir = spec.direction();
        let mut is_source = vec![false; n];
        for s in graph.sources(dir) {
            is_source[s] = true;
        }
        let rank = graph.priority(dir);

        let mut input: Vec<S::Fact> = graph.blocks.iter().map(|&b| spec.bottom(b)).collect();
        let mut output: Vec<S::Fact> = graph.blocks.iter().map(|&b| spec.bottom(b)).collect();

        // Min-heap on RPO rank (BinaryHeap is a max-heap; invert).
        let mut heap: BinaryHeap<(std::cmp::Reverse<usize>, usize)> =
            (0..n).map(|i| (std::cmp::Reverse(rank[i]), i)).collect();
        let mut queued = vec![true; n];

        while let Some((_, b)) = heap.pop() {
            queued[b] = false;
            let inp = recompute_input(spec, graph, &is_source, &output, dir, b);
            let outp = spec.transfer(graph.blocks[b], &inp);
            input[b] = inp;
            if outp != output[b] {
                output[b] = outp;
                for &(s, _) in &graph.dir_succs(dir)[b] {
                    if !queued[s] {
                        queued[s] = true;
                        heap.push((std::cmp::Reverse(rank[s]), s));
                    }
                }
            }
        }
        package(graph, input, output)
    }
}

/// Round-based parallel executor (the shape of the
/// `gabizon103/parallel-dataflow` exemplar): each round recomputes every
/// dirty block from a snapshot of the current outputs on a rayon pool,
/// then merges and marks direction-successors of changed blocks dirty.
///
/// Reads within a round may see the previous round's facts; monotonicity
/// makes that a matter of round count, not of the fixpoint reached.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelExecutor {
    /// Worker threads for the intra-function rounds. 0 = inherit the
    /// ambient rayon context (no pool is built — the cheap, composable
    /// default under an enclosing `install`); an explicit count builds a
    /// dedicated pool per `run`, which is for ablations, not hot paths.
    pub threads: usize,
}

impl DataflowExecutor for ParallelExecutor {
    fn run<S: DataflowSpec + Sync>(&self, spec: &S, graph: &FlowGraph) -> DataflowResults<S::Fact> {
        let n = graph.blocks.len();
        let dir = spec.direction();
        let mut is_source = vec![false; n];
        for s in graph.sources(dir) {
            is_source[s] = true;
        }

        let mut input: Vec<S::Fact> = graph.blocks.iter().map(|&b| spec.bottom(b)).collect();
        let mut output: Vec<S::Fact> = graph.blocks.iter().map(|&b| spec.bottom(b)).collect();

        let pool = match self.threads {
            0 => None,
            t => Some(rayon::ThreadPoolBuilder::new().num_threads(t).build().expect("pool")),
        };

        let mut dirty: BTreeSet<usize> = (0..n).collect();
        while !dirty.is_empty() {
            let batch: Vec<usize> = std::mem::take(&mut dirty).into_iter().collect();
            let is_source_ref = &is_source;
            let output_ref = &output;
            let round = || {
                batch
                    .par_iter()
                    .map(|&b| {
                        let inp = recompute_input(spec, graph, is_source_ref, output_ref, dir, b);
                        let outp = spec.transfer(graph.blocks[b], &inp);
                        (b, inp, outp)
                    })
                    .collect()
            };
            let results: Vec<(usize, S::Fact, S::Fact)> = match &pool {
                Some(p) => p.install(round),
                None => round(),
            };
            for (b, inp, outp) in results {
                input[b] = inp;
                if outp != output[b] {
                    output[b] = outp;
                    dirty.extend(graph.dir_succs(dir)[b].iter().map(|&(s, _)| s));
                }
            }
        }
        package(graph, input, output)
    }
}

/// Block count at which [`ExecutorKind::Auto`] switches a function
/// from the serial to the round-based parallel executor. Below it, a
/// round's fork/join overhead dwarfs the transfer work; above it, the
/// per-round batches are wide enough for idle pool workers to steal a
/// useful share (the `pba-gen` Skewed-profile giant functions the
/// `steal` benchmark measures sit well past it).
pub const AUTO_BLOCK_THRESHOLD: usize = 2048;

/// Executor selection for APIs that take it as a runtime value.
#[derive(Debug, Clone, Copy, Default)]
pub enum ExecutorKind {
    /// [`SerialExecutor`].
    #[default]
    Serial,
    /// [`ParallelExecutor`] with its thread count (0 = inherit the
    /// ambient rayon context — see [`ParallelExecutor::threads`]. Since
    /// the work-stealing shim, `Parallel(0)` composes with
    /// [`run_per_function`]: a worker's nested rounds split into its
    /// own deque, where idle pool workers steal them).
    Parallel(usize),
    /// Pick per function: [`SerialExecutor`] below
    /// [`AUTO_BLOCK_THRESHOLD`] blocks, [`ParallelExecutor`] (ambient
    /// threads) at or above it. The right default for whole-binary
    /// drivers on skewed workloads: the one giant function goes
    /// round-based (stealable), the thousands of small ones stay on
    /// the cheap serial worklist.
    Auto,
}

impl ExecutorKind {
    /// Run `spec` over `graph` with the selected executor.
    pub fn run<S: DataflowSpec + Sync>(
        &self,
        spec: &S,
        graph: &FlowGraph,
    ) -> DataflowResults<S::Fact> {
        match *self {
            ExecutorKind::Serial => SerialExecutor.run(spec, graph),
            ExecutorKind::Parallel(threads) => ParallelExecutor { threads }.run(spec, graph),
            ExecutorKind::Auto => {
                if graph.blocks.len() >= AUTO_BLOCK_THRESHOLD {
                    ParallelExecutor { threads: 0 }.run(spec, graph)
                } else {
                    SerialExecutor.run(spec, graph)
                }
            }
        }
    }
}

/// The three standard per-function analyses, engine-computed.
#[derive(Debug)]
pub struct FuncAnalyses {
    /// Backward register liveness (AC6).
    pub liveness: LivenessResult,
    /// Forward reaching definitions.
    pub reaching: ReachingDefs,
    /// Forward stack-height analysis.
    pub stack: StackResult,
}

/// Run the three standard analyses over every function of a finalized
/// CFG, fanning functions across a rayon pool of `threads` workers.
///
/// This is the paper's "parallel analysis over a read-only CFG" phase:
/// functions are size-sorted (largest first) for load balance, and each
/// function runs the [`SerialExecutor`] — across-function parallelism is
/// where the throughput is; use [`run_all_with`] to pick a different
/// per-function executor.
pub fn run_all(cfg: &pba_cfg::Cfg, threads: usize) -> HashMap<u64, FuncAnalyses> {
    run_all_with(cfg, threads, ExecutorKind::Serial)
}

/// [`run_all`] with an explicit per-function executor.
pub fn run_all_with(
    cfg: &pba_cfg::Cfg,
    threads: usize,
    exec: ExecutorKind,
) -> HashMap<u64, FuncAnalyses> {
    run_per_function(cfg, threads, |view| {
        // One graph serves all three fixpoints.
        let graph = FlowGraph::build(view);
        FuncAnalyses {
            liveness: liveness_on(view, &graph, exec),
            reaching: reaching_defs_on(view, &graph, exec),
            stack: stack_heights_on(view, &graph, exec),
        }
    })
}

/// The whole-binary fan-out underneath [`run_all`]: apply `analyze` to a
/// view of every function, size-sorted largest-first across a rayon pool
/// of `threads` workers, keyed by function entry.
///
/// Consumers needing only one analysis (BinFeat wants liveness,
/// hpcstruct phase 6 wants stack heights) go through this directly
/// rather than paying for all three.
pub fn run_per_function<T: Send>(
    cfg: &pba_cfg::Cfg,
    threads: usize,
    analyze: impl Fn(&FuncView<'_>) -> T + Sync,
) -> HashMap<u64, T> {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("run_all pool");
    let mut funcs: Vec<&pba_cfg::Function> = cfg.functions.values().collect();
    // Largest first: starting the giants early gives the stealing pool
    // the whole run to rebalance around them. (The size-striping this
    // list used to need under the static-chunking shim is gone — the
    // deque-based pool splits the index range and idle workers steal,
    // so skew is handled by the scheduler, not the submission order.)
    funcs.sort_by_key(|f| std::cmp::Reverse(f.blocks.len()));
    let results: Vec<(u64, T)> = pool.install(|| {
        funcs
            .par_iter()
            .map(|f| {
                let view = FuncView::new(cfg, f);
                (f.entry, analyze(&view))
            })
            .collect()
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::VecView;
    use pba_cfg::EdgeKind;

    /// A toy forward "block counting" spec: each block's output is
    /// `max(inputs) + 1`; the fixpoint is the longest acyclic distance
    /// from entry, saturating on cycles at the block count (capped).
    struct Depth {
        cap: u32,
    }

    impl DataflowSpec for Depth {
        type Fact = u32;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn bottom(&self, _b: u64) -> u32 {
            0
        }
        fn boundary(&self, _b: u64) -> u32 {
            1
        }
        fn meet(&self, into: &mut u32, incoming: &u32) {
            *into = (*into).max(*incoming);
        }
        fn transfer(&self, _b: u64, input: &u32) -> u32 {
            (*input + 1).min(self.cap)
        }
    }

    fn diamond() -> VecView {
        VecView {
            entry_block: 1,
            block_data: vec![(1, 2, vec![]), (2, 3, vec![]), (3, 4, vec![]), (4, 5, vec![])],
            edges: vec![
                (1, 2, EdgeKind::CondTaken),
                (1, 3, EdgeKind::CondNotTaken),
                (2, 4, EdgeKind::Direct),
                (3, 4, EdgeKind::Fallthrough),
            ],
        }
    }

    #[test]
    fn serial_reaches_expected_fixpoint() {
        let view = diamond();
        let graph = FlowGraph::build(&view);
        let r = SerialExecutor.run(&Depth { cap: 100 }, &graph);
        assert_eq!(r.input[&1], 1);
        assert_eq!(r.output[&1], 2);
        assert_eq!(r.input[&4], 3, "join takes the max over both arms");
    }

    #[test]
    fn executors_agree_on_cyclic_graph() {
        let mut view = diamond();
        view.edges.push((4, 1, EdgeKind::Direct)); // loop back
        let graph = FlowGraph::build(&view);
        let spec = Depth { cap: 17 };
        let a = SerialExecutor.run(&spec, &graph);
        let b = ParallelExecutor { threads: 4 }.run(&spec, &graph);
        for blk in graph.blocks.iter() {
            assert_eq!(a.input[blk], b.input[blk]);
            assert_eq!(a.output[blk], b.output[blk]);
        }
    }

    #[test]
    fn auto_matches_serial_on_both_sides_of_the_threshold() {
        // Small graph (serial side).
        let view = diamond();
        let graph = FlowGraph::build(&view);
        let spec = Depth { cap: 100 };
        let serial = SerialExecutor.run(&spec, &graph);
        let auto = ExecutorKind::Auto.run(&spec, &graph);
        for blk in graph.blocks.iter() {
            assert_eq!(serial.input[blk], auto.input[blk]);
            assert_eq!(serial.output[blk], auto.output[blk]);
        }

        // A chain longer than the threshold (parallel side).
        let n = AUTO_BLOCK_THRESHOLD as u64 + 10;
        let view = VecView {
            entry_block: 1,
            block_data: (1..=n).map(|b| (b, b + 1, vec![])).collect(),
            edges: (1..n).map(|b| (b, b + 1, EdgeKind::Direct)).collect(),
        };
        let graph = FlowGraph::build(&view);
        assert!(graph.blocks.len() >= AUTO_BLOCK_THRESHOLD);
        let spec = Depth { cap: u32::MAX };
        let serial = SerialExecutor.run(&spec, &graph);
        let auto = ExecutorKind::Auto.run(&spec, &graph);
        for blk in graph.blocks.iter() {
            assert_eq!(serial.input[blk], auto.input[blk]);
            assert_eq!(serial.output[blk], auto.output[blk]);
        }
    }

    #[test]
    fn backward_sources_are_exit_blocks() {
        let view = diamond();
        let graph = FlowGraph::build(&view);
        assert_eq!(graph.sources(Direction::Backward), vec![3], "block 4 at dense index 3");
        assert_eq!(graph.sources(Direction::Forward), vec![0]);
    }
}
