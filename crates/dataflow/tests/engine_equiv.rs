//! Engine equivalence properties, on randomized `pba-gen` binaries:
//!
//! 1. `SerialExecutor`, `ParallelExecutor`, and the barrier-free
//!    `AsyncExecutor` (1/2/4/8 threads each) reach identical fixpoints
//!    for all three analyses — the engine's central "interchangeable by
//!    construction" claim; all executors drive the allocation-free
//!    `transfer_into` path, so this also pins that the borrowed-view +
//!    in-place engine is byte-identical to the reference fixpoints
//!    (plus a directed Skewed-profile case, where one giant function
//!    crosses the Auto threshold and exercises the async executor's
//!    stealing on a deep propagation chain);
//! 2. the engine reproduces the bespoke worklist loops byte-for-byte
//!    (the original fixpoints are kept here as reference
//!    implementations; the reaching-defs oracle carries the deliberate
//!    gen-retraction fix — a later same-block redefinition now retracts
//!    the earlier def's gen bits);
//! 3. `run_all` agrees with per-function invocation, and the
//!    `BinaryIr`-backed `run_all_ir` agrees with both.

use pba_dataflow::engine::ExecutorKind;
use pba_dataflow::{
    liveness, liveness_with, reaching_defs, reaching_defs_with, stack_heights, stack_heights_with,
    BinaryIr, CfgView, Def, FuncIr,
};
use pba_gen::{generate, GenConfig};
use pba_isa::{ControlFlow, Reg, RegSet};
use proptest::prelude::*;
use std::collections::HashMap;

/// Thread counts the parallel executor is swept over.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn arb_config() -> impl Strategy<Value = GenConfig> {
    (any::<u64>(), 6usize..24, 0.0f64..0.5, 0.0f64..0.2, 0.0f64..0.2, 0.0f64..0.25).prop_map(
        |(seed, num_funcs, pct_switch, pct_tailcall, pct_noreturn, pct_shared)| GenConfig {
            seed,
            num_funcs,
            pct_switch,
            pct_tailcall,
            pct_noreturn,
            pct_shared,
            pct_cold: pct_shared / 2.0,
            debug_info: false,
            ..Default::default()
        },
    )
}

fn parsed_cfg(cfg: &GenConfig) -> pba_cfg::Cfg {
    let g = generate(cfg);
    let elf = pba_elf::Elf::parse(g.elf).unwrap();
    let input = pba_parse::ParseInput::from_elf(&elf).unwrap();
    pba_parse::parse_parallel(&input, 2).cfg
}

// ---------------------------------------------------------------------
// Reference implementations: the pre-engine bespoke fixpoint loops,
// verbatim in structure, kept to pin the engine to the old results.
// ---------------------------------------------------------------------

/// The original `liveness` worklist (pre-refactor `liveness.rs`).
fn reference_liveness(view: &dyn CfgView) -> (HashMap<u64, RegSet>, HashMap<u64, RegSet>) {
    let exit_live = || {
        let mut s = Reg::sysv_callee_saved();
        s.insert(Reg::RAX);
        s.insert(Reg::RSP);
        s
    };
    let blocks = view.blocks();
    let mut gen = HashMap::new();
    let mut kill = HashMap::new();
    for &b in blocks {
        let mut g = RegSet::EMPTY;
        let mut k = RegSet::EMPTY;
        for i in view.insns(b) {
            match i.control_flow() {
                ControlFlow::Call { .. } | ControlFlow::IndirectCall => {
                    g = g.union(RegSet::from_iter(Reg::SYSV_ARGS).minus(k));
                    k = k.union(Reg::sysv_caller_saved());
                }
                _ => {
                    g = g.union(i.regs_read().minus(k));
                    k = k.union(i.regs_written());
                }
            }
        }
        gen.insert(b, g);
        kill.insert(b, k);
    }
    let mut live_in: HashMap<u64, RegSet> = HashMap::new();
    let mut live_out: HashMap<u64, RegSet> = HashMap::new();
    for &b in blocks {
        let is_exit = view.succ_edges(b).is_empty();
        live_out.insert(b, if is_exit { exit_live() } else { RegSet::EMPTY });
        live_in.insert(b, RegSet::EMPTY);
    }
    let mut work: Vec<u64> = blocks.to_vec();
    while let Some(b) = work.pop() {
        let out = live_out[&b];
        let new_in = gen[&b].union(out.minus(kill[&b]));
        live_in.insert(b, new_in);
        for &(p, _) in view.pred_edges(b) {
            let merged = live_out[&p].union(new_in);
            if merged != live_out[&p] {
                live_out.insert(p, merged);
                work.push(p);
            }
        }
    }
    (live_in, live_out)
}

/// The original `stack_heights` worklist (pre-refactor `stack.rs`).
fn reference_stack(
    view: &dyn CfgView,
) -> (HashMap<u64, pba_dataflow::stack::Frame>, HashMap<u64, pba_dataflow::stack::Frame>) {
    use pba_dataflow::stack::{transfer, Frame};
    use pba_dataflow::Height;
    let blocks = view.blocks();
    let bottom = Frame { sp: Height::Bottom, fp: Height::Bottom };
    let mut at_entry: HashMap<u64, Frame> = blocks.iter().map(|&b| (b, bottom)).collect();
    let mut at_exit: HashMap<u64, Frame> = blocks.iter().map(|&b| (b, bottom)).collect();
    let entry = view.entry();
    at_entry.insert(entry, Frame::entry());
    let mut work = vec![entry];
    while let Some(b) = work.pop() {
        let mut f = at_entry[&b];
        for i in view.insns(b) {
            f = transfer(i, f);
        }
        if f != at_exit[&b] {
            at_exit.insert(b, f);
            for &(s, _) in view.succ_edges(b) {
                let cur = at_entry[&s];
                let joined = cur.join(f);
                if joined != cur {
                    at_entry.insert(s, joined);
                    work.push(s);
                }
            }
        }
    }
    (at_entry, at_exit)
}

/// Reaching defs at block entry via the original dense fixpoint shape,
/// materialized as sorted def lists per block.
fn reference_reaching(view: &dyn CfgView) -> HashMap<u64, Vec<Def>> {
    let blocks = view.blocks();
    // gen/kill as def-sets per block, fixpoint over HashSet facts.
    use std::collections::HashSet;
    let mut all_defs: Vec<Def> = Vec::new();
    for &b in blocks {
        for i in view.insns(b) {
            for r in i.regs_written().iter() {
                let d = Def { addr: i.addr, reg: r };
                if !all_defs.contains(&d) {
                    all_defs.push(d);
                }
            }
        }
    }
    let by_reg = |r: Reg| all_defs.iter().copied().filter(move |d| d.reg == r);
    // Gen-retracting semantics (matching `ReachingSpec`): a later
    // same-block redef kills earlier defs of the register AND retracts
    // their gen bits, so only the last def per register flows out of the
    // block. (The pre-refactor loops kept earlier same-block gens alive;
    // that quirk was fixed deliberately and this oracle changed with it.)
    let transfer = |b: u64, inn: &HashSet<Def>| -> HashSet<Def> {
        let mut gen: HashSet<Def> = HashSet::new();
        let mut kill: HashSet<Def> = HashSet::new();
        for i in view.insns(b) {
            for r in i.regs_written().iter() {
                let this = Def { addr: i.addr, reg: r };
                kill.extend(by_reg(r));
                kill.remove(&this);
                gen.retain(|d| d.reg != r);
                gen.insert(this);
            }
        }
        let mut out: HashSet<Def> = inn.difference(&kill).copied().collect();
        out.extend(gen);
        out
    };
    let mut reach_in: HashMap<u64, HashSet<Def>> =
        blocks.iter().map(|&b| (b, HashSet::new())).collect();
    let mut work: Vec<u64> = blocks.to_vec();
    while let Some(b) = work.pop() {
        let out = transfer(b, &reach_in[&b]);
        for &(s, _) in view.succ_edges(b) {
            let inn = reach_in.get_mut(&s).unwrap();
            let before = inn.len();
            inn.extend(out.iter().copied());
            if inn.len() != before {
                work.push(s);
            }
        }
    }
    reach_in
        .into_iter()
        .map(|(b, s)| {
            let mut v: Vec<Def> = s.into_iter().collect();
            v.sort_unstable();
            (b, v)
        })
        .collect()
}

proptest! {
    // Each case parses a binary and runs 3 analyses × 6 configurations
    // over every function; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn executors_and_legacy_loops_agree(cfg in arb_config()) {
        let cfg_graph = parsed_cfg(&cfg);
        prop_assert!(!cfg_graph.functions.is_empty());

        for f in cfg_graph.functions.values() {
            let view = FuncIr::build(&cfg_graph, f);

            // --- liveness ---
            let serial = liveness(&view);
            let (ref_in, ref_out) = reference_liveness(&view);
            for &b in view.blocks() {
                prop_assert_eq!(serial.live_in(b), ref_in[&b], "engine liveness != legacy ({})", f.name);
                prop_assert_eq!(serial.live_out(b), ref_out[&b]);
            }
            for t in THREADS {
                let par = liveness_with(&view, ExecutorKind::Parallel(t));
                let asy = liveness_with(&view, ExecutorKind::Async(t));
                for &b in view.blocks() {
                    prop_assert_eq!(par.live_in(b), serial.live_in(b), "liveness in, {} threads", t);
                    prop_assert_eq!(par.live_out(b), serial.live_out(b), "liveness out, {} threads", t);
                    prop_assert_eq!(asy.live_in(b), serial.live_in(b), "async liveness in, {} threads", t);
                    prop_assert_eq!(asy.live_out(b), serial.live_out(b), "async liveness out, {} threads", t);
                }
            }

            // --- stack heights ---
            let serial = stack_heights(&view);
            let (ref_entry, ref_exit) = reference_stack(&view);
            for &b in view.blocks() {
                prop_assert_eq!(serial.entry_frame(b), Some(ref_entry[&b]), "engine stack != legacy ({})", f.name);
                prop_assert_eq!(serial.exit_frame(b), Some(ref_exit[&b]));
            }
            for t in THREADS {
                let par = stack_heights_with(&view, ExecutorKind::Parallel(t));
                let asy = stack_heights_with(&view, ExecutorKind::Async(t));
                for &b in view.blocks() {
                    prop_assert_eq!(par.entry_frame(b), serial.entry_frame(b), "stack entry, {} threads", t);
                    prop_assert_eq!(par.exit_frame(b), serial.exit_frame(b), "stack exit, {} threads", t);
                    prop_assert_eq!(asy.entry_frame(b), serial.entry_frame(b), "async stack entry, {} threads", t);
                    prop_assert_eq!(asy.exit_frame(b), serial.exit_frame(b), "async stack exit, {} threads", t);
                }
            }

            // --- reaching definitions ---
            let serial = reaching_defs(&view);
            let reference = reference_reaching(&view);
            for &b in &f.blocks {
                let mut got = serial.reaching_at_entry(b);
                got.sort_unstable();
                prop_assert_eq!(&got, &reference[&b], "engine reaching != legacy ({})", f.name);
                // Point lookups agree with the materialized sets.
                for d in &reference[&b] {
                    prop_assert!(serial.def_reaches_entry(b, *d));
                }
            }
            for t in THREADS {
                let par = reaching_defs_with(&view, ExecutorKind::Parallel(t));
                let asy = reaching_defs_with(&view, ExecutorKind::Async(t));
                prop_assert_eq!(&par.defs, &serial.defs);
                prop_assert_eq!(&asy.defs, &serial.defs);
                for &b in &f.blocks {
                    let mut a = par.reaching_at_entry(b);
                    let mut y = asy.reaching_at_entry(b);
                    let mut s = serial.reaching_at_entry(b);
                    a.sort_unstable();
                    y.sort_unstable();
                    s.sort_unstable();
                    prop_assert_eq!(&a, &s, "reaching, {} threads", t);
                    prop_assert_eq!(&y, &s, "async reaching, {} threads", t);
                }
            }
        }
    }

    #[test]
    fn run_all_and_run_all_ir_match_per_function_results(cfg in arb_config()) {
        let cfg_graph = parsed_cfg(&cfg);
        let ir = BinaryIr::build(&cfg_graph, 2);
        for threads in [1usize, 4] {
            let all = pba_dataflow::run_all(&cfg_graph, threads);
            let all_ir = pba_dataflow::run_all_ir(&ir, threads, ExecutorKind::Serial);
            prop_assert_eq!(all.len(), cfg_graph.functions.len());
            prop_assert_eq!(all_ir.len(), cfg_graph.functions.len());
            for f in cfg_graph.functions.values() {
                let view = FuncIr::build(&cfg_graph, f);
                let a = &all[&f.entry];
                let b = &all_ir[&f.entry];
                let lone = liveness(&view);
                let stack = stack_heights(&view);
                let rd = reaching_defs(&view);
                for &blk in view.blocks() {
                    prop_assert_eq!(a.liveness.live_in(blk), lone.live_in(blk));
                    prop_assert_eq!(b.liveness.live_in(blk), lone.live_in(blk));
                    prop_assert_eq!(a.stack.entry_frame(blk), stack.entry_frame(blk));
                    prop_assert_eq!(b.stack.entry_frame(blk), stack.entry_frame(blk));
                }
                prop_assert_eq!(&a.reaching.defs, &rd.defs);
                prop_assert_eq!(&b.reaching.defs, &rd.defs);
            }
        }
    }
}

/// The Skewed-profile corpus: one giant function (past the Auto
/// threshold, thousands of blocks of deep diamond chains) among hundreds
/// of small ones — the workload the barrier-free executor exists for.
/// All three analyses must be byte-identical to serial at every thread
/// count, and `Auto` (which now routes the giant to `Async`) must match
/// too.
#[test]
fn async_matches_serial_on_skewed_corpus() {
    let mut gen_cfg = pba_gen::Profile::Skewed.config(0xA51C);
    gen_cfg.num_funcs = 40; // scale the small-function tail down for test time
    let g = generate(&gen_cfg);
    let elf = pba_elf::Elf::parse(g.elf).unwrap();
    let input = pba_parse::ParseInput::from_elf(&elf).unwrap();
    let cfg_graph = pba_parse::parse_parallel(&input, 2).cfg;
    let giant =
        cfg_graph.functions.values().map(|f| f.blocks.len()).max().expect("non-empty corpus");
    assert!(giant > 1000, "Skewed profile must keep its giant function ({giant} blocks)");

    for f in cfg_graph.functions.values() {
        let view = FuncIr::build(&cfg_graph, f);
        let live = liveness(&view);
        let stack = stack_heights(&view);
        let rd = reaching_defs(&view);
        let mut execs: Vec<ExecutorKind> =
            THREADS.iter().map(|&t| ExecutorKind::Async(t)).collect();
        execs.push(ExecutorKind::Auto);
        for exec in execs {
            let l = liveness_with(&view, exec);
            let s = stack_heights_with(&view, exec);
            let r = reaching_defs_with(&view, exec);
            for &b in view.blocks() {
                assert_eq!(l.live_in(b), live.live_in(b), "{exec:?} liveness at {b:#x}");
                assert_eq!(l.live_out(b), live.live_out(b), "{exec:?} liveness at {b:#x}");
                assert_eq!(s.entry_frame(b), stack.entry_frame(b), "{exec:?} stack at {b:#x}");
                assert_eq!(s.exit_frame(b), stack.exit_frame(b), "{exec:?} stack at {b:#x}");
            }
            assert_eq!(r.defs, rd.defs, "{exec:?} def table");
            for &b in view.blocks() {
                let mut got = r.reaching_at_entry(b);
                let mut want = rd.reaching_at_entry(b);
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "{exec:?} reaching at {b:#x}");
            }
        }
    }
}
