//! Executor equivalence for the engine-backed jump-table slice: the
//! serial priority-worklist, the round-based parallel executor, and the
//! barrier-free async executor must produce byte-identical
//! `SliceOutcome`s — including the sticky widening decisions — for
//! every indirect jump of a generated corpus (the Skewed profile's
//! giant function included), and for a handcrafted CFG that actually
//! trips `MAX_PATHS` widening. This is the equivalence test the ROADMAP
//! required before sweeping `SliceSpec` under a parallel executor.

use pba_dataflow::view::VecView;
use pba_dataflow::{collect_indirect_jumps, slice_indirect_jump_with, ExecutorKind, FuncIr};
use pba_gen::{generate, Profile};
use pba_isa::x86::encode;
use pba_isa::{insn::AluKind, insn::Cond, Insn, MemRef, Reg};
use pba_parse::{parse_parallel, ParseInput};

/// Parse a generated profile binary into a finalized CFG.
fn corpus_cfg(profile: Profile, seed: u64, num_funcs: usize) -> pba_cfg::Cfg {
    let mut cfg = profile.config(seed);
    cfg.num_funcs = num_funcs;
    let g = generate(&cfg);
    let elf = pba_elf::Elf::parse(g.elf).expect("well-formed ELF");
    let input = ParseInput::from_elf(&elf).expect(".text present");
    parse_parallel(&input, 4).cfg
}

#[test]
fn serial_and_parallel_slices_agree_on_gen_corpus() {
    for (profile, seed, num_funcs) in
        [(Profile::Server, 0x51CE, 160), (Profile::Coreutils, 7, 90), (Profile::Skewed, 0x51CE, 40)]
    {
        let cfg = corpus_cfg(profile, seed, num_funcs);
        let jumps = collect_indirect_jumps(&cfg);
        assert!(!jumps.is_empty(), "{profile:?} corpus must contain indirect jumps");
        for &(func, block) in &jumps {
            let f = &cfg.functions[&func];
            let view = FuncIr::build(&cfg, f);
            let serial = slice_indirect_jump_with(&view, block, ExecutorKind::Serial)
                .expect("indirect jump");
            for threads in [2usize, 4] {
                let par = slice_indirect_jump_with(&view, block, ExecutorKind::Parallel(threads))
                    .expect("indirect jump");
                assert_eq!(
                    serial.facts, par.facts,
                    "facts diverge at {block:#x} ({profile:?}, {threads} threads)"
                );
                assert_eq!(
                    serial.widened, par.widened,
                    "widening signal diverges at {block:#x} ({profile:?}, {threads} threads)"
                );
            }
            for threads in [1usize, 2, 4, 8] {
                let asy = slice_indirect_jump_with(&view, block, ExecutorKind::Async(threads))
                    .expect("indirect jump");
                assert_eq!(
                    serial.facts, asy.facts,
                    "async facts diverge at {block:#x} ({profile:?}, {threads} threads)"
                );
                assert_eq!(
                    serial.widened, asy.widened,
                    "async widening diverges at {block:#x} ({profile:?}, {threads} threads)"
                );
            }
        }
    }
}

fn decode_seq(bytes: &[u8], base: u64) -> Vec<Insn> {
    let mut out = vec![];
    let mut at = 0usize;
    while at < bytes.len() {
        let i = pba_isa::x86::decode_one(&bytes[at..], base + at as u64).unwrap();
        at += i.len as usize;
        out.push(i);
    }
    out
}

/// The widening-order case proper: a diamond chain that fans past
/// `MAX_PATHS` (same shape as the in-crate widening test), sliced under
/// both executors. Widening is the one non-monotone step — this pins
/// that its sticky per-block trigger is executor-order-independent.
#[test]
fn serial_and_parallel_agree_under_widening() {
    let mut guard = vec![];
    encode::cmp_ri(&mut guard, Reg::RSI, 7);
    let j = encode::jcc_rel32(&mut guard, Cond::A);
    encode::patch_rel32(&mut guard, j, 0x300);
    let guard_insns = decode_seq(&guard, 0x1000);
    let guard_end = 0x1000 + guard.len() as u64;

    let mut t = vec![];
    let lea_site = encode::lea_rip(&mut t, Reg::RCX);
    encode::movsxd(&mut t, Reg::RAX, &MemRef::base_index(Some(Reg::RCX), Reg::RSI, 4, 0));
    encode::alu_rr(&mut t, AluKind::Add, Reg::RAX, Reg::RCX);
    encode::patch_rel32(&mut t, lea_site, 0x100);
    let t_insns = decode_seq(&t, 0x2000);
    let t_end = 0x2000 + t.len() as u64;

    let mut jb = vec![];
    encode::jmp_ind_reg(&mut jb, Reg::RAX);
    let jb_insns = decode_seq(&jb, 0x9000);
    let jb_end = 0x9000 + jb.len() as u64;

    let arm_a = |i: u64| 0x3000 + i * 0x100;
    let arm_b = |i: u64| 0x3000 + i * 0x100 + 0x80;

    let mut block_data = vec![
        (0x1000, guard_end, guard_insns),
        (0x2000, t_end, t_insns),
        (0x9000, jb_end, jb_insns),
    ];
    let mut edges = vec![
        (0x1000, 0x2000, pba_cfg::EdgeKind::CondNotTaken),
        (0x1000, 0x7000, pba_cfg::EdgeKind::CondTaken),
        (0x2000, 0x9000, pba_cfg::EdgeKind::Direct),
        (0x2000, arm_a(1), pba_cfg::EdgeKind::CondTaken),
        (0x2000, arm_b(1), pba_cfg::EdgeKind::CondNotTaken),
    ];
    for i in 1..=8u64 {
        let mut a = vec![];
        encode::alu_ri(&mut a, AluKind::Add, Reg::RAX, 0);
        let mut b = vec![];
        encode::alu_ri(&mut b, AluKind::Add, Reg::RAX, 1 << i);
        let a_insns = decode_seq(&a, arm_a(i));
        let b_insns = decode_seq(&b, arm_b(i));
        block_data.push((arm_a(i), arm_a(i) + a.len() as u64, a_insns));
        block_data.push((arm_b(i), arm_b(i) + b.len() as u64, b_insns));
        if i < 8 {
            for src in [arm_a(i), arm_b(i)] {
                edges.push((src, arm_a(i + 1), pba_cfg::EdgeKind::CondTaken));
                edges.push((src, arm_b(i + 1), pba_cfg::EdgeKind::CondNotTaken));
            }
        } else {
            edges.push((arm_a(i), 0x9000, pba_cfg::EdgeKind::Direct));
            edges.push((arm_b(i), 0x9000, pba_cfg::EdgeKind::Direct));
        }
    }
    let view = VecView::new(0x1000, block_data, edges);

    let serial =
        slice_indirect_jump_with(&view, 0x9000, ExecutorKind::Serial).expect("indirect jump");
    assert!(serial.widened, "the fan-out must trip MAX_PATHS widening");
    for threads in [2usize, 4, 8] {
        let par = slice_indirect_jump_with(&view, 0x9000, ExecutorKind::Parallel(threads))
            .expect("indirect jump");
        assert_eq!(serial.facts, par.facts, "facts diverge ({threads} threads)");
        assert_eq!(serial.widened, par.widened);
    }
    for threads in [1usize, 2, 4, 8] {
        let asy = slice_indirect_jump_with(&view, 0x9000, ExecutorKind::Async(threads))
            .expect("indirect jump");
        assert_eq!(serial.facts, asy.facts, "async facts diverge ({threads} threads)");
        assert_eq!(serial.widened, asy.widened, "async widening diverges ({threads} threads)");
    }
}
