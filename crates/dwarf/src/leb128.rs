//! LEB128 variable-length integer codec (DWARF Appendix C).

/// Append an unsigned LEB128 value.
pub fn write_uleb(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append a signed LEB128 value.
pub fn write_sleb(buf: &mut Vec<u8>, mut v: i64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        let sign_clear = byte & 0x40 == 0;
        if (v == 0 && sign_clear) || (v == -1 && !sign_clear) {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 value; returns `(value, bytes_consumed)`.
pub fn read_uleb(buf: &[u8]) -> Option<(u64, usize)> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if shift >= 64 {
            return None; // overlong
        }
        result |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some((result, i + 1));
        }
        shift += 7;
    }
    None // ran out of bytes
}

/// Read a signed LEB128 value; returns `(value, bytes_consumed)`.
pub fn read_sleb(buf: &[u8]) -> Option<(i64, usize)> {
    let mut result: i64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        result |= ((byte & 0x7F) as i64) << shift;
        shift += 7;
        if byte & 0x80 == 0 {
            if shift < 64 && byte & 0x40 != 0 {
                result |= -1i64 << shift; // sign extend
            }
            return Some((result, i + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // From the DWARF spec examples.
        let mut b = vec![];
        write_uleb(&mut b, 624485);
        assert_eq!(b, vec![0xE5, 0x8E, 0x26]);
        let mut b = vec![];
        write_sleb(&mut b, -123456);
        assert_eq!(b, vec![0xC0, 0xBB, 0x78]);
    }

    #[test]
    fn small_values_one_byte() {
        for v in 0u64..128 {
            let mut b = vec![];
            write_uleb(&mut b, v);
            assert_eq!(b.len(), 1);
            assert_eq!(read_uleb(&b), Some((v, 1)));
        }
        for v in -64i64..64 {
            let mut b = vec![];
            write_sleb(&mut b, v);
            assert_eq!(b.len(), 1, "{v}");
            assert_eq!(read_sleb(&b), Some((v, 1)));
        }
    }

    #[test]
    fn truncated_input() {
        let mut b = vec![];
        write_uleb(&mut b, u64::MAX);
        assert!(read_uleb(&b[..b.len() - 1]).is_none());
        assert!(read_uleb(&[]).is_none());
        assert!(read_sleb(&[0x80]).is_none());
    }

    #[test]
    fn overlong_rejected() {
        // 11 continuation bytes exceed 64 bits of shift.
        let b = [0x80u8; 11];
        assert!(read_uleb(&b).is_none());
        assert!(read_sleb(&b).is_none());
    }

    proptest! {
        #[test]
        fn uleb_round_trips(v in any::<u64>()) {
            let mut b = vec![];
            write_uleb(&mut b, v);
            prop_assert_eq!(read_uleb(&b), Some((v, b.len())));
        }

        #[test]
        fn sleb_round_trips(v in any::<i64>()) {
            let mut b = vec![];
            write_sleb(&mut b, v);
            prop_assert_eq!(read_sleb(&b), Some((v, b.len())));
        }

        #[test]
        fn consecutive_values_decode_in_sequence(vs in prop::collection::vec(any::<u64>(), 1..50)) {
            let mut b = vec![];
            for &v in &vs {
                write_uleb(&mut b, v);
            }
            let mut at = 0;
            for &v in &vs {
                let (got, n) = read_uleb(&b[at..]).unwrap();
                prop_assert_eq!(got, v);
                at += n;
            }
            prop_assert_eq!(at, b.len());
        }
    }
}
