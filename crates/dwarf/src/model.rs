//! In-memory debug-information model.
//!
//! This is the shape hpcstruct consumes: a forest of compile units, each
//! holding subprograms (with possibly non-contiguous ranges — outlined
//! `.cold` blocks produce exactly those), nested inlined-subroutine trees
//! (the static calling context of AC4), and a line table mapping
//! addresses to file/line (AC3).

/// One row of a decoded line table: `addr` maps to `file`/`line`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRow {
    /// First address this row covers.
    pub addr: u64,
    /// Index into the unit's file list.
    pub file: u32,
    /// 1-based source line.
    pub line: u32,
}

/// A per-unit line table. Rows are kept sorted by address; a row covers
/// addresses up to the next row (or the unit end).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LineTable {
    /// Sorted rows.
    pub rows: Vec<LineRow>,
}

impl LineTable {
    /// Look up the `(file, line)` covering `addr`, if any.
    pub fn lookup(&self, addr: u64) -> Option<(u32, u32)> {
        match self.rows.binary_search_by_key(&addr, |r| r.addr) {
            Ok(i) => Some((self.rows[i].file, self.rows[i].line)),
            Err(0) => None,
            Err(i) => Some((self.rows[i - 1].file, self.rows[i - 1].line)),
        }
    }

    /// Ensure rows are address-sorted (encoder precondition).
    pub fn normalize(&mut self) {
        self.rows.sort_by_key(|r| r.addr);
    }
}

/// An inlined-subroutine DIE: one inlined call site, possibly with
/// further inlining nested inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlinedSub {
    /// Name of the function that was inlined (the abstract origin).
    pub name: String,
    /// Covered address range `[low_pc, high_pc)`.
    pub low_pc: u64,
    /// End of the covered range.
    pub high_pc: u64,
    /// File index of the call site.
    pub call_file: u32,
    /// Line of the call site.
    pub call_line: u32,
    /// Inlined subroutines nested within this one.
    pub children: Vec<InlinedSub>,
}

impl InlinedSub {
    /// Depth of this inline tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(InlinedSub::depth).max().unwrap_or(0)
    }

    /// Total number of inline DIEs in this subtree.
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(InlinedSub::count).sum::<usize>()
    }
}

/// A subprogram (function) DIE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subprogram {
    /// Function name.
    pub name: String,
    /// Address ranges `[lo, hi)`. One entry for contiguous functions;
    /// multiple when cold blocks are outlined. DWARF encodes the first
    /// case with `low_pc`/`high_pc` and the second with `DW_AT_ranges`.
    pub ranges: Vec<(u64, u64)>,
    /// Declaring file index.
    pub decl_file: u32,
    /// Declaring line.
    pub decl_line: u32,
    /// Inlined call tree.
    pub inlines: Vec<InlinedSub>,
}

impl Subprogram {
    /// Does `addr` fall inside any of this function's ranges?
    pub fn contains(&self, addr: u64) -> bool {
        self.ranges.iter().any(|&(lo, hi)| addr >= lo && addr < hi)
    }

    /// Lowest covered address (entry point for compiler-emitted code).
    pub fn low_pc(&self) -> u64 {
        self.ranges.iter().map(|r| r.0).min().unwrap_or(0)
    }

    /// Total bytes covered across all ranges.
    pub fn byte_size(&self) -> u64 {
        self.ranges.iter().map(|&(lo, hi)| hi - lo).sum()
    }
}

/// A compile unit: one source file's worth of debug info.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileUnit {
    /// Unit (source file) name.
    pub name: String,
    /// Lowest text address in the unit.
    pub low_pc: u64,
    /// Highest text address (exclusive).
    pub high_pc: u64,
    /// File-name table referenced by `decl_file`/`call_file`/line rows.
    /// Index 0 is conventionally the unit name itself.
    pub files: Vec<String>,
    /// Functions defined in this unit.
    pub subprograms: Vec<Subprogram>,
    /// Line table for this unit.
    pub line_table: LineTable,
}

impl CompileUnit {
    /// Locate the subprogram covering `addr`.
    pub fn subprogram_at(&self, addr: u64) -> Option<&Subprogram> {
        self.subprograms.iter().find(|s| s.contains(addr))
    }
}

/// A complete debug-information forest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DebugInfo {
    /// All compile units.
    pub units: Vec<CompileUnit>,
}

impl DebugInfo {
    /// Total subprogram count across units.
    pub fn subprogram_count(&self) -> usize {
        self.units.iter().map(|u| u.subprograms.len()).sum()
    }

    /// Total line-table rows across units.
    pub fn line_row_count(&self) -> usize {
        self.units.iter().map(|u| u.line_table.rows.len()).sum()
    }

    /// Bytes of heap the decoded forest pins (the resident-size
    /// estimate a memoizing session sums).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        fn inline_bytes(i: &InlinedSub) -> usize {
            i.name.capacity()
                + i.children.capacity() * size_of::<InlinedSub>()
                + i.children.iter().map(inline_bytes).sum::<usize>()
        }
        fn sub_bytes(s: &Subprogram) -> usize {
            s.name.capacity()
                + s.ranges.capacity() * size_of::<(u64, u64)>()
                + s.inlines.capacity() * size_of::<InlinedSub>()
                + s.inlines.iter().map(inline_bytes).sum::<usize>()
        }
        self.units.capacity() * size_of::<CompileUnit>()
            + self
                .units
                .iter()
                .map(|u| {
                    u.name.capacity()
                        + u.files.capacity() * size_of::<String>()
                        + u.files.iter().map(String::capacity).sum::<usize>()
                        + u.subprograms.capacity() * size_of::<Subprogram>()
                        + u.subprograms.iter().map(sub_bytes).sum::<usize>()
                        + u.line_table.rows.capacity() * size_of::<LineRow>()
                })
                .sum::<usize>()
    }

    /// Canonicalize ordering (units by low_pc, subprograms by entry,
    /// rows by address) so structural equality is meaningful after a
    /// parallel decode.
    pub fn normalize(&mut self) {
        for u in &mut self.units {
            u.line_table.normalize();
            u.subprograms.sort_by_key(Subprogram::low_pc);
        }
        self.units.sort_by_key(|u| u.low_pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_lookup_covers_gaps() {
        let t = LineTable {
            rows: vec![
                LineRow { addr: 0x100, file: 0, line: 10 },
                LineRow { addr: 0x108, file: 0, line: 11 },
                LineRow { addr: 0x110, file: 1, line: 3 },
            ],
        };
        assert_eq!(t.lookup(0x0FF), None);
        assert_eq!(t.lookup(0x100), Some((0, 10)));
        assert_eq!(t.lookup(0x105), Some((0, 10)));
        assert_eq!(t.lookup(0x108), Some((0, 11)));
        assert_eq!(t.lookup(0x10F), Some((0, 11)));
        assert_eq!(t.lookup(0x110), Some((1, 3)));
        assert_eq!(t.lookup(0xFFFF), Some((1, 3)));
    }

    #[test]
    fn subprogram_multi_range_contains() {
        let s = Subprogram {
            name: "f".into(),
            ranges: vec![(0x100, 0x140), (0x800, 0x810)], // hot + cold
            decl_file: 0,
            decl_line: 1,
            inlines: vec![],
        };
        assert!(s.contains(0x100));
        assert!(s.contains(0x13F));
        assert!(!s.contains(0x140));
        assert!(s.contains(0x805));
        assert_eq!(s.low_pc(), 0x100);
        assert_eq!(s.byte_size(), 0x50);
    }

    #[test]
    fn inline_tree_metrics() {
        let tree = InlinedSub {
            name: "a".into(),
            low_pc: 0,
            high_pc: 16,
            call_file: 0,
            call_line: 5,
            children: vec![InlinedSub {
                name: "b".into(),
                low_pc: 4,
                high_pc: 12,
                call_file: 0,
                call_line: 6,
                children: vec![],
            }],
        };
        assert_eq!(tree.depth(), 2);
        assert_eq!(tree.count(), 2);
    }
}
