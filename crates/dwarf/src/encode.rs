//! DWARF v4 encoder: model → `.debug_*` section bytes.
//!
//! Uses the real DWARF constants and encodings for the constructs the
//! system exercises: DIE trees with an abbreviation table, a shared
//! string table (`DW_FORM_strp`), non-contiguous ranges
//! (`DW_AT_ranges` + `.debug_ranges`) and a line-number program per unit
//! (including special opcodes, so the decoder's state machine earns its
//! keep).

use crate::leb128::{write_sleb, write_uleb};
use crate::model::{CompileUnit, DebugInfo, InlinedSub, LineTable, Subprogram};
use std::collections::HashMap;

// Tags.
pub(crate) const DW_TAG_COMPILE_UNIT: u64 = 0x11;
pub(crate) const DW_TAG_SUBPROGRAM: u64 = 0x2E;
pub(crate) const DW_TAG_INLINED_SUBROUTINE: u64 = 0x1D;

// Attributes.
pub(crate) const DW_AT_NAME: u64 = 0x03;
pub(crate) const DW_AT_STMT_LIST: u64 = 0x10;
pub(crate) const DW_AT_LOW_PC: u64 = 0x11;
pub(crate) const DW_AT_HIGH_PC: u64 = 0x12;
pub(crate) const DW_AT_DECL_FILE: u64 = 0x3A;
pub(crate) const DW_AT_DECL_LINE: u64 = 0x3B;
pub(crate) const DW_AT_RANGES: u64 = 0x55;
pub(crate) const DW_AT_CALL_FILE: u64 = 0x58;
pub(crate) const DW_AT_CALL_LINE: u64 = 0x59;

// Forms.
pub(crate) const DW_FORM_ADDR: u64 = 0x01;
pub(crate) const DW_FORM_DATA4: u64 = 0x06;
pub(crate) const DW_FORM_DATA8: u64 = 0x07;
pub(crate) const DW_FORM_STRP: u64 = 0x0E;
pub(crate) const DW_FORM_UDATA: u64 = 0x0F;
pub(crate) const DW_FORM_SEC_OFFSET: u64 = 0x17;

// Abbreviation codes we assign.
const ABBREV_CU: u64 = 1;
const ABBREV_SUBPROGRAM: u64 = 2;
const ABBREV_SUBPROGRAM_RANGES: u64 = 3;
const ABBREV_INLINED: u64 = 4;

// Line-number program parameters (GCC's defaults).
pub(crate) const LINE_BASE: i8 = -5;
pub(crate) const LINE_RANGE: u8 = 14;
pub(crate) const OPCODE_BASE: u8 = 13;
pub(crate) const STD_OPCODE_LENGTHS: [u8; 12] = [0, 1, 1, 1, 1, 0, 0, 0, 1, 0, 0, 1];

/// The encoded `.debug_*` sections, ready for
/// [`pba_elf::ElfBuilder::add_section`].
#[derive(Debug, Clone, Default)]
pub struct DebugSections {
    /// `.debug_info`.
    pub info: Vec<u8>,
    /// `.debug_abbrev`.
    pub abbrev: Vec<u8>,
    /// `.debug_str`.
    pub strs: Vec<u8>,
    /// `.debug_line`.
    pub line: Vec<u8>,
    /// `.debug_ranges`.
    pub ranges: Vec<u8>,
}

impl DebugSections {
    /// Total encoded size across all sections.
    pub fn total_len(&self) -> usize {
        self.info.len() + self.abbrev.len() + self.strs.len() + self.line.len() + self.ranges.len()
    }
}

/// Deduplicating `.debug_str` builder.
struct StrPool {
    bytes: Vec<u8>,
    interned: HashMap<String, u32>,
}

impl StrPool {
    fn new() -> StrPool {
        StrPool { bytes: Vec::new(), interned: HashMap::new() }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&off) = self.interned.get(s) {
            return off;
        }
        let off = self.bytes.len() as u32;
        self.bytes.extend_from_slice(s.as_bytes());
        self.bytes.push(0);
        self.interned.insert(s.to_string(), off);
        off
    }
}

fn encode_abbrev_table() -> Vec<u8> {
    let mut b = Vec::new();
    let mut decl = |code: u64, tag: u64, children: bool, attrs: &[(u64, u64)]| {
        write_uleb(&mut b, code);
        write_uleb(&mut b, tag);
        b.push(children as u8);
        for &(at, form) in attrs {
            write_uleb(&mut b, at);
            write_uleb(&mut b, form);
        }
        write_uleb(&mut b, 0);
        write_uleb(&mut b, 0);
    };
    decl(
        ABBREV_CU,
        DW_TAG_COMPILE_UNIT,
        true,
        &[
            (DW_AT_NAME, DW_FORM_STRP),
            (DW_AT_LOW_PC, DW_FORM_ADDR),
            (DW_AT_HIGH_PC, DW_FORM_DATA8),
            (DW_AT_STMT_LIST, DW_FORM_SEC_OFFSET),
        ],
    );
    decl(
        ABBREV_SUBPROGRAM,
        DW_TAG_SUBPROGRAM,
        true,
        &[
            (DW_AT_NAME, DW_FORM_STRP),
            (DW_AT_LOW_PC, DW_FORM_ADDR),
            (DW_AT_HIGH_PC, DW_FORM_DATA8),
            (DW_AT_DECL_FILE, DW_FORM_UDATA),
            (DW_AT_DECL_LINE, DW_FORM_UDATA),
        ],
    );
    decl(
        ABBREV_SUBPROGRAM_RANGES,
        DW_TAG_SUBPROGRAM,
        true,
        &[
            (DW_AT_NAME, DW_FORM_STRP),
            (DW_AT_RANGES, DW_FORM_SEC_OFFSET),
            (DW_AT_DECL_FILE, DW_FORM_UDATA),
            (DW_AT_DECL_LINE, DW_FORM_UDATA),
        ],
    );
    decl(
        ABBREV_INLINED,
        DW_TAG_INLINED_SUBROUTINE,
        true,
        &[
            (DW_AT_NAME, DW_FORM_STRP),
            (DW_AT_LOW_PC, DW_FORM_ADDR),
            (DW_AT_HIGH_PC, DW_FORM_DATA8),
            (DW_AT_CALL_FILE, DW_FORM_UDATA),
            (DW_AT_CALL_LINE, DW_FORM_UDATA),
        ],
    );
    write_uleb(&mut b, 0); // end of table
    b
}

fn encode_inlined(out: &mut Vec<u8>, strs: &mut StrPool, inl: &InlinedSub) {
    write_uleb(out, ABBREV_INLINED);
    out.extend_from_slice(&strs.intern(&inl.name).to_le_bytes());
    out.extend_from_slice(&inl.low_pc.to_le_bytes());
    out.extend_from_slice(&(inl.high_pc - inl.low_pc).to_le_bytes());
    write_uleb(out, inl.call_file as u64);
    write_uleb(out, inl.call_line as u64);
    for c in &inl.children {
        encode_inlined(out, strs, c);
    }
    write_uleb(out, 0); // end of children
}

fn encode_subprogram(
    out: &mut Vec<u8>,
    strs: &mut StrPool,
    ranges_sec: &mut Vec<u8>,
    sp: &Subprogram,
) {
    if sp.ranges.len() == 1 {
        let (lo, hi) = sp.ranges[0];
        write_uleb(out, ABBREV_SUBPROGRAM);
        out.extend_from_slice(&strs.intern(&sp.name).to_le_bytes());
        out.extend_from_slice(&lo.to_le_bytes());
        out.extend_from_slice(&(hi - lo).to_le_bytes());
    } else {
        let off = ranges_sec.len() as u32;
        for &(lo, hi) in &sp.ranges {
            ranges_sec.extend_from_slice(&lo.to_le_bytes());
            ranges_sec.extend_from_slice(&hi.to_le_bytes());
        }
        ranges_sec.extend_from_slice(&[0u8; 16]); // terminator
        write_uleb(out, ABBREV_SUBPROGRAM_RANGES);
        out.extend_from_slice(&strs.intern(&sp.name).to_le_bytes());
        out.extend_from_slice(&off.to_le_bytes());
    }
    write_uleb(out, sp.decl_file as u64);
    write_uleb(out, sp.decl_line as u64);
    for inl in &sp.inlines {
        encode_inlined(out, strs, inl);
    }
    write_uleb(out, 0); // end of children
}

/// Encode one unit's line-number program.
fn encode_line_program(out: &mut Vec<u8>, files: &[String], table: &LineTable) -> u32 {
    let start = out.len() as u32;

    // Header assembled into a scratch buffer so lengths can be patched.
    let mut hdr = Vec::new();
    hdr.extend_from_slice(&4u16.to_le_bytes()); // version
    let header_length_at = hdr.len();
    hdr.extend_from_slice(&[0; 4]); // header_length placeholder
    let post_len = hdr.len();
    hdr.push(1); // minimum_instruction_length
    hdr.push(1); // maximum_operations_per_instruction
    hdr.push(1); // default_is_stmt
    hdr.push(LINE_BASE as u8);
    hdr.push(LINE_RANGE);
    hdr.push(OPCODE_BASE);
    hdr.extend_from_slice(&STD_OPCODE_LENGTHS);
    hdr.push(0); // empty include_directories
    for f in files {
        hdr.extend_from_slice(f.as_bytes());
        hdr.push(0);
        write_uleb(&mut hdr, 0); // dir index
        write_uleb(&mut hdr, 0); // mtime
        write_uleb(&mut hdr, 0); // size
    }
    hdr.push(0); // end of file_names
    let header_length = (hdr.len() - post_len) as u32;
    hdr[header_length_at..header_length_at + 4].copy_from_slice(&header_length.to_le_bytes());

    // Program.
    let mut prog = Vec::new();
    let mut cur_addr: u64 = 0;
    let mut cur_file: u32 = 1; // DWARF file numbering starts at 1
    let mut cur_line: i64 = 1;
    let mut first = true;
    for row in &table.rows {
        // File index in the model is 0-based; DWARF's is 1-based.
        let want_file = row.file + 1;
        if first {
            // DW_LNE_set_address
            prog.push(0);
            write_uleb(&mut prog, 9);
            prog.push(0x02);
            prog.extend_from_slice(&row.addr.to_le_bytes());
            cur_addr = row.addr;
            first = false;
        }
        if want_file != cur_file {
            prog.push(4); // DW_LNS_set_file
            write_uleb(&mut prog, want_file as u64);
            cur_file = want_file;
        }
        let pc_adv = row.addr - cur_addr;
        let line_inc = row.line as i64 - cur_line;
        // Try a special opcode first.
        let special = if line_inc >= LINE_BASE as i64
            && line_inc <= (LINE_BASE as i64 + LINE_RANGE as i64 - 1)
        {
            let op = (line_inc - LINE_BASE as i64)
                + (LINE_RANGE as i64) * pc_adv as i64
                + OPCODE_BASE as i64;
            (op <= 255).then_some(op as u8)
        } else {
            None
        };
        if let Some(op) = special {
            prog.push(op);
        } else {
            if line_inc != 0 {
                prog.push(3); // DW_LNS_advance_line
                write_sleb(&mut prog, line_inc);
            }
            if pc_adv != 0 {
                prog.push(2); // DW_LNS_advance_pc
                write_uleb(&mut prog, pc_adv);
            }
            prog.push(1); // DW_LNS_copy
        }
        cur_addr = row.addr;
        cur_line = row.line as i64;
    }
    // DW_LNE_end_sequence
    prog.push(0);
    write_uleb(&mut prog, 1);
    prog.push(0x01);

    let unit_length = (hdr.len() + prog.len()) as u32;
    out.extend_from_slice(&unit_length.to_le_bytes());
    out.extend_from_slice(&hdr);
    out.extend_from_slice(&prog);
    start
}

fn encode_unit(
    info: &mut Vec<u8>,
    strs: &mut StrPool,
    line_sec: &mut Vec<u8>,
    ranges_sec: &mut Vec<u8>,
    unit: &CompileUnit,
) {
    let stmt_off = encode_line_program(line_sec, &unit.files, &unit.line_table);

    let mut body = Vec::new();
    write_uleb(&mut body, ABBREV_CU);
    body.extend_from_slice(&strs.intern(&unit.name).to_le_bytes());
    body.extend_from_slice(&unit.low_pc.to_le_bytes());
    body.extend_from_slice(&(unit.high_pc - unit.low_pc).to_le_bytes());
    body.extend_from_slice(&stmt_off.to_le_bytes());
    for sp in &unit.subprograms {
        encode_subprogram(&mut body, strs, ranges_sec, sp);
    }
    write_uleb(&mut body, 0); // end of CU children

    // Unit header: unit_length(u32) version(u16) abbrev_off(u32) addr_size(u8).
    let unit_length = (2 + 4 + 1 + body.len()) as u32;
    info.extend_from_slice(&unit_length.to_le_bytes());
    info.extend_from_slice(&4u16.to_le_bytes());
    info.extend_from_slice(&0u32.to_le_bytes());
    info.push(8);
    info.extend_from_slice(&body);
}

/// Encode a complete [`DebugInfo`] into `.debug_*` sections.
pub fn encode(di: &DebugInfo) -> DebugSections {
    let mut strs = StrPool::new();
    let mut out = DebugSections { abbrev: encode_abbrev_table(), ..Default::default() };
    for unit in &di.units {
        encode_unit(&mut out.info, &mut strs, &mut out.line, &mut out.ranges, unit);
    }
    out.strs = strs.bytes;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LineRow;

    #[test]
    fn empty_info_still_has_abbrevs() {
        let s = encode(&DebugInfo::default());
        assert!(s.info.is_empty());
        assert!(!s.abbrev.is_empty());
        assert_eq!(s.abbrev.last(), Some(&0));
    }

    #[test]
    fn string_pool_dedupes() {
        let mut p = StrPool::new();
        let a = p.intern("alpha");
        let b = p.intern("beta");
        let a2 = p.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(p.bytes, b"alpha\0beta\0");
    }

    #[test]
    fn multi_range_subprogram_populates_ranges_section() {
        let di = DebugInfo {
            units: vec![CompileUnit {
                name: "a.c".into(),
                low_pc: 0x1000,
                high_pc: 0x2000,
                files: vec!["a.c".into()],
                subprograms: vec![Subprogram {
                    name: "split".into(),
                    ranges: vec![(0x1000, 0x1100), (0x1F00, 0x1F80)],
                    decl_file: 0,
                    decl_line: 10,
                    inlines: vec![],
                }],
                line_table: LineTable::default(),
            }],
        };
        let s = encode(&di);
        // 2 pairs + terminator, 16 bytes each.
        assert_eq!(s.ranges.len(), 48);
        let lo = u64::from_le_bytes(s.ranges[0..8].try_into().unwrap());
        assert_eq!(lo, 0x1000);
        assert_eq!(&s.ranges[32..48], &[0u8; 16]);
    }

    #[test]
    fn line_program_has_header_and_end_sequence() {
        let mut sec = Vec::new();
        let table = LineTable {
            rows: vec![
                LineRow { addr: 0x400000, file: 0, line: 1 },
                LineRow { addr: 0x400004, file: 0, line: 2 },
            ],
        };
        let off = encode_line_program(&mut sec, &["main.c".into()], &table);
        assert_eq!(off, 0);
        let unit_len = u32::from_le_bytes(sec[0..4].try_into().unwrap());
        assert_eq!(unit_len as usize + 4, sec.len());
        // Ends with end_sequence (00 01 01).
        assert_eq!(&sec[sec.len() - 3..], &[0x00, 0x01, 0x01]);
    }
}
