//! DWARF-modeled debug information: encoder and parallel decoder.
//!
//! hpcstruct's job is to map machine instructions back to source
//! constructs: functions, inlined call chains, and source lines (paper
//! Section 7.1, analysis capabilities AC3/AC4). That requires real debug
//! info machinery:
//!
//! * [`leb128`] — variable-length integer codec used throughout DWARF;
//! * [`model`] — the in-memory form: compile units, subprograms with
//!   (possibly non-contiguous) address ranges, nested inlined
//!   subroutines, and per-unit line tables;
//! * [`encode`] — serializes the model into `.debug_abbrev`,
//!   `.debug_info`, `.debug_str`, `.debug_ranges` and `.debug_line`
//!   sections using the DWARF v4 encodings (real tag/attribute/form
//!   constants, a real line-number state machine with special opcodes);
//! * [`decode`] — parses those sections back. Compile units are
//!   self-delimiting, so decoding indexes unit headers first and then
//!   decodes *units in parallel* — this is exactly the hpcstruct DWARF
//!   parallelization of paper Section 7.2 and the "DWARF" column of
//!   Table 2.
//!
//! The paper's Section 8.2 observes that DWARF in real binaries dwarfs the
//! text (TensorFlow: 7.6 GiB of `.debug_*` against 112 MiB of `.text`);
//! the workload generator uses this crate to reproduce that ratio.

pub mod decode;
pub mod encode;
pub mod leb128;
pub mod model;

pub use decode::{decode_parallel, decode_serial, DwarfError};
pub use encode::DebugSections;
pub use model::{CompileUnit, DebugInfo, InlinedSub, LineRow, LineTable, Subprogram};
