//! DWARF v4 decoder with per-compile-unit parallelism.
//!
//! Compile units are self-delimiting (`unit_length` heads each one), so
//! decoding splits into an O(units) serial index pass followed by a
//! parallel map over units — the exact structure the paper's Section 7.2
//! describes for hpcstruct ("a forest-like structure with a tree for each
//! compilation unit ... an OpenMP parallel for loop to process each of
//! the CUs in parallel"). Each unit's decode touches only its own slice
//! of `.debug_info` plus the shared read-only `.debug_str` /
//! `.debug_line` / `.debug_ranges`, so no synchronization is needed —
//! the races the paper fixed in libdw are designed out by slicing.
//!
//! The decoder is *generic over the abbreviation table*: it interprets
//! whatever abbreviations the producer declared, skipping unknown
//! attributes by form, rather than assuming the encoder's fixed codes.

use crate::encode::*;
use crate::leb128::{read_sleb, read_uleb};
use crate::model::{CompileUnit, DebugInfo, InlinedSub, LineRow, LineTable, Subprogram};
use rayon::prelude::*;
use std::collections::HashMap;

/// Decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DwarfError {
    /// Input ended inside a structure.
    Truncated(&'static str),
    /// Structurally invalid data.
    Bad(String),
}

impl std::fmt::Display for DwarfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DwarfError::Truncated(w) => write!(f, "truncated {w}"),
            DwarfError::Bad(m) => write!(f, "malformed DWARF: {m}"),
        }
    }
}

impl std::error::Error for DwarfError {}

type Result<T> = std::result::Result<T, DwarfError>;

/// One abbreviation declaration.
#[derive(Debug, Clone)]
struct Abbrev {
    tag: u64,
    has_children: bool,
    attrs: Vec<(u64, u64)>, // (attribute, form)
}

fn parse_abbrevs(bytes: &[u8]) -> Result<HashMap<u64, Abbrev>> {
    let mut map = HashMap::new();
    let mut at = 0usize;
    loop {
        if at >= bytes.len() {
            // An absent/empty table is fine (stripped binaries).
            return Ok(map);
        }
        let (code, n) = read_uleb(&bytes[at..]).ok_or(DwarfError::Truncated("abbrev code"))?;
        at += n;
        if code == 0 {
            return Ok(map);
        }
        let (tag, n) = read_uleb(&bytes[at..]).ok_or(DwarfError::Truncated("abbrev tag"))?;
        at += n;
        let has_children = *bytes.get(at).ok_or(DwarfError::Truncated("abbrev children"))? != 0;
        at += 1;
        let mut attrs = Vec::new();
        loop {
            let (attr, n) = read_uleb(&bytes[at..]).ok_or(DwarfError::Truncated("abbrev attr"))?;
            at += n;
            let (form, n) = read_uleb(&bytes[at..]).ok_or(DwarfError::Truncated("abbrev form"))?;
            at += n;
            if attr == 0 && form == 0 {
                break;
            }
            attrs.push((attr, form));
        }
        map.insert(code, Abbrev { tag, has_children, attrs });
    }
}

/// A decoded attribute value.
#[derive(Debug, Clone, Copy)]
enum AttrVal {
    U(u64),
    I(i64),
    StrOff(u32),
}

impl AttrVal {
    fn as_u64(self) -> u64 {
        match self {
            AttrVal::U(v) => v,
            AttrVal::I(v) => v as u64,
            AttrVal::StrOff(v) => v as u64,
        }
    }
}

fn read_form(bytes: &[u8], at: &mut usize, form: u64) -> Result<AttrVal> {
    let need = |n: usize, what: &'static str, bytes: &[u8], at: usize| {
        bytes.get(at..at + n).ok_or(DwarfError::Truncated(what)).map(|s| s.to_vec())
    };
    match form {
        DW_FORM_ADDR | DW_FORM_DATA8 => {
            let b = need(8, "data8", bytes, *at)?;
            *at += 8;
            Ok(AttrVal::U(u64::from_le_bytes(b.try_into().unwrap())))
        }
        DW_FORM_DATA4 | DW_FORM_SEC_OFFSET => {
            let b = need(4, "data4", bytes, *at)?;
            *at += 4;
            Ok(AttrVal::U(u32::from_le_bytes(b.try_into().unwrap()) as u64))
        }
        DW_FORM_STRP => {
            let b = need(4, "strp", bytes, *at)?;
            *at += 4;
            Ok(AttrVal::StrOff(u32::from_le_bytes(b.try_into().unwrap())))
        }
        DW_FORM_UDATA => {
            let (v, n) = read_uleb(&bytes[*at..]).ok_or(DwarfError::Truncated("udata"))?;
            *at += n;
            Ok(AttrVal::U(v))
        }
        0x0D /* DW_FORM_sdata */ => {
            let (v, n) = read_sleb(&bytes[*at..]).ok_or(DwarfError::Truncated("sdata"))?;
            *at += n;
            Ok(AttrVal::I(v))
        }
        0x0B /* DW_FORM_data1 */ => {
            let b = need(1, "data1", bytes, *at)?;
            *at += 1;
            Ok(AttrVal::U(b[0] as u64))
        }
        0x05 /* DW_FORM_data2 */ => {
            let b = need(2, "data2", bytes, *at)?;
            *at += 2;
            Ok(AttrVal::U(u16::from_le_bytes(b.try_into().unwrap()) as u64))
        }
        0x08 /* DW_FORM_string */ => {
            // Inline NUL-terminated; we return offset-less marker by
            // skipping (the model only uses strp names).
            let rest = &bytes[*at..];
            let end = rest.iter().position(|&c| c == 0).ok_or(DwarfError::Truncated("string"))?;
            *at += end + 1;
            Ok(AttrVal::U(0))
        }
        other => Err(DwarfError::Bad(format!("unsupported form {other:#x}"))),
    }
}

fn str_at(strs: &[u8], off: u32) -> Result<String> {
    let rest = strs.get(off as usize..).ok_or(DwarfError::Truncated(".debug_str"))?;
    let end = rest.iter().position(|&c| c == 0).ok_or(DwarfError::Truncated(".debug_str nul"))?;
    String::from_utf8(rest[..end].to_vec()).map_err(|_| DwarfError::Bad("non-utf8 string".into()))
}

fn read_ranges(ranges: &[u8], off: u64) -> Result<Vec<(u64, u64)>> {
    let mut out = Vec::new();
    let mut at = off as usize;
    loop {
        let pair = ranges.get(at..at + 16).ok_or(DwarfError::Truncated(".debug_ranges"))?;
        let lo = u64::from_le_bytes(pair[..8].try_into().unwrap());
        let hi = u64::from_le_bytes(pair[8..].try_into().unwrap());
        at += 16;
        if lo == 0 && hi == 0 {
            return Ok(out);
        }
        out.push((lo, hi));
    }
}

/// Read the attributes of one DIE into a map keyed by attribute id.
fn read_die_attrs(body: &[u8], at: &mut usize, abbrev: &Abbrev) -> Result<HashMap<u64, AttrVal>> {
    let mut vals = HashMap::with_capacity(abbrev.attrs.len());
    for &(attr, form) in &abbrev.attrs {
        let v = read_form(body, at, form)?;
        vals.insert(attr, v);
    }
    Ok(vals)
}

fn attr_string(vals: &HashMap<u64, AttrVal>, attr: u64, strs: &[u8]) -> Result<String> {
    match vals.get(&attr) {
        Some(AttrVal::StrOff(off)) => str_at(strs, *off),
        Some(v) => Ok(v.as_u64().to_string()),
        None => Ok(String::new()),
    }
}

struct UnitCtx<'a> {
    strs: &'a [u8],
    ranges: &'a [u8],
    abbrevs: &'a HashMap<u64, Abbrev>,
}

fn decode_inlined_tree(body: &[u8], at: &mut usize, ctx: &UnitCtx<'_>) -> Result<Vec<InlinedSub>> {
    let mut out = Vec::new();
    loop {
        let (code, n) = read_uleb(&body[*at..]).ok_or(DwarfError::Truncated("DIE code"))?;
        *at += n;
        if code == 0 {
            return Ok(out);
        }
        let abbrev = ctx
            .abbrevs
            .get(&code)
            .ok_or_else(|| DwarfError::Bad(format!("unknown abbrev {code}")))?;
        let vals = read_die_attrs(body, at, abbrev)?;
        let children =
            if abbrev.has_children { decode_inlined_tree(body, at, ctx)? } else { Vec::new() };
        if abbrev.tag == DW_TAG_INLINED_SUBROUTINE {
            let low = vals.get(&DW_AT_LOW_PC).map(|v| v.as_u64()).unwrap_or(0);
            let size = vals.get(&DW_AT_HIGH_PC).map(|v| v.as_u64()).unwrap_or(0);
            out.push(InlinedSub {
                name: attr_string(&vals, DW_AT_NAME, ctx.strs)?,
                low_pc: low,
                high_pc: low + size,
                call_file: vals.get(&DW_AT_CALL_FILE).map(|v| v.as_u64() as u32).unwrap_or(0),
                call_line: vals.get(&DW_AT_CALL_LINE).map(|v| v.as_u64() as u32).unwrap_or(0),
                children,
            });
        }
        // Unknown child tags are skipped (their attrs were consumed).
    }
}

fn decode_line_program(line_sec: &[u8], off: u64) -> Result<(Vec<String>, LineTable)> {
    let at0 = off as usize;
    let hdr = line_sec.get(at0..at0 + 4).ok_or(DwarfError::Truncated(".debug_line header"))?;
    let unit_len = u32::from_le_bytes(hdr.try_into().unwrap()) as usize;
    let unit = line_sec
        .get(at0 + 4..at0 + 4 + unit_len)
        .ok_or(DwarfError::Truncated(".debug_line unit"))?;

    let mut at = 0usize;
    let _version = u16::from_le_bytes(
        unit.get(at..at + 2).ok_or(DwarfError::Truncated("line version"))?.try_into().unwrap(),
    );
    at += 2;
    let header_length = u32::from_le_bytes(
        unit.get(at..at + 4).ok_or(DwarfError::Truncated("header_length"))?.try_into().unwrap(),
    ) as usize;
    at += 4;
    let prog_start = at + header_length;

    let min_insn = *unit.get(at).ok_or(DwarfError::Truncated("min_insn"))? as u64;
    at += 1;
    let _max_ops = unit.get(at).ok_or(DwarfError::Truncated("max_ops"))?;
    at += 1;
    let _default_is_stmt = unit.get(at).ok_or(DwarfError::Truncated("is_stmt"))?;
    at += 1;
    let line_base = *unit.get(at).ok_or(DwarfError::Truncated("line_base"))? as i8 as i64;
    at += 1;
    let line_range = *unit.get(at).ok_or(DwarfError::Truncated("line_range"))? as u64;
    at += 1;
    let opcode_base = *unit.get(at).ok_or(DwarfError::Truncated("opcode_base"))?;
    at += 1;
    let std_lens: Vec<u8> = unit
        .get(at..at + opcode_base as usize - 1)
        .ok_or(DwarfError::Truncated("std_opcode_lengths"))?
        .to_vec();
    at += opcode_base as usize - 1;

    // include_directories: cstrings until empty.
    loop {
        let rest = &unit[at..];
        let end = rest.iter().position(|&c| c == 0).ok_or(DwarfError::Truncated("dirs"))?;
        at += end + 1;
        if end == 0 {
            break;
        }
    }
    // file_names.
    let mut files = Vec::new();
    loop {
        let rest = &unit[at..];
        let end = rest.iter().position(|&c| c == 0).ok_or(DwarfError::Truncated("files"))?;
        if end == 0 {
            at += 1;
            break;
        }
        let name = String::from_utf8(rest[..end].to_vec())
            .map_err(|_| DwarfError::Bad("non-utf8 filename".into()))?;
        at += end + 1;
        for _ in 0..3 {
            let (_, n) = read_uleb(&unit[at..]).ok_or(DwarfError::Truncated("file attrs"))?;
            at += n;
        }
        files.push(name);
    }
    debug_assert!(at <= prog_start);

    // State machine.
    let mut rows = Vec::new();
    let mut addr: u64 = 0;
    let mut file: u64 = 1;
    let mut line: i64 = 1;
    let mut at = prog_start;
    while at < unit.len() {
        let opcode = unit[at];
        at += 1;
        if opcode == 0 {
            // Extended opcode.
            let (len, n) = read_uleb(&unit[at..]).ok_or(DwarfError::Truncated("ext len"))?;
            at += n;
            let sub = *unit.get(at).ok_or(DwarfError::Truncated("ext opcode"))?;
            match sub {
                0x01 => {
                    // end_sequence: reset state.
                    addr = 0;
                    file = 1;
                    line = 1;
                }
                0x02 => {
                    let b = unit.get(at + 1..at + 9).ok_or(DwarfError::Truncated("set_address"))?;
                    addr = u64::from_le_bytes(b.try_into().unwrap());
                }
                _ => {} // define_file etc.: skip by length
            }
            at += len as usize;
        } else if opcode < opcode_base {
            match opcode {
                1 => {
                    // copy
                    rows.push(LineRow { addr, file: (file.max(1) - 1) as u32, line: line as u32 });
                }
                2 => {
                    let (v, n) =
                        read_uleb(&unit[at..]).ok_or(DwarfError::Truncated("advance_pc"))?;
                    at += n;
                    addr += v * min_insn;
                }
                3 => {
                    let (v, n) =
                        read_sleb(&unit[at..]).ok_or(DwarfError::Truncated("advance_line"))?;
                    at += n;
                    line += v;
                }
                4 => {
                    let (v, n) = read_uleb(&unit[at..]).ok_or(DwarfError::Truncated("set_file"))?;
                    at += n;
                    file = v;
                }
                8 => {
                    // const_add_pc: advance by the special-opcode 255 amount.
                    addr += ((255 - opcode_base) as u64 / line_range) * min_insn;
                }
                9 => {
                    let b =
                        unit.get(at..at + 2).ok_or(DwarfError::Truncated("fixed_advance_pc"))?;
                    addr += u16::from_le_bytes(b.try_into().unwrap()) as u64;
                    at += 2;
                }
                _ => {
                    // Skip operands of other standard opcodes by table.
                    let nargs = std_lens.get(opcode as usize - 1).copied().unwrap_or(0);
                    for _ in 0..nargs {
                        let (_, n) =
                            read_uleb(&unit[at..]).ok_or(DwarfError::Truncated("std arg"))?;
                        at += n;
                    }
                }
            }
        } else {
            // Special opcode.
            let adj = (opcode - opcode_base) as u64;
            addr += (adj / line_range) * min_insn;
            line += line_base + (adj % line_range) as i64;
            rows.push(LineRow { addr, file: (file.max(1) - 1) as u32, line: line as u32 });
        }
    }

    let mut table = LineTable { rows };
    table.normalize();
    Ok((files, table))
}

/// Byte range of one compile unit within `.debug_info`.
#[derive(Debug, Clone, Copy)]
struct UnitSlice {
    start: usize,
    end: usize,
}

fn index_units(info: &[u8]) -> Result<Vec<UnitSlice>> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < info.len() {
        let b = info.get(at..at + 4).ok_or(DwarfError::Truncated("unit_length"))?;
        let len = u32::from_le_bytes(b.try_into().unwrap()) as usize;
        let end = at + 4 + len;
        if end > info.len() {
            return Err(DwarfError::Truncated("unit body"));
        }
        out.push(UnitSlice { start: at, end });
        at = end;
    }
    Ok(out)
}

fn decode_unit(
    info: &[u8],
    slice: UnitSlice,
    line_sec: &[u8],
    ctx: &UnitCtx<'_>,
) -> Result<CompileUnit> {
    let unit = &info[slice.start..slice.end];
    let mut at = 4usize; // skip unit_length
    let _version = u16::from_le_bytes(
        unit.get(at..at + 2).ok_or(DwarfError::Truncated("version"))?.try_into().unwrap(),
    );
    at += 2;
    at += 4; // abbrev offset (single shared table at 0)
    at += 1; // address size

    // Root DIE: compile unit.
    let (code, n) = read_uleb(&unit[at..]).ok_or(DwarfError::Truncated("CU DIE"))?;
    at += n;
    let abbrev =
        ctx.abbrevs.get(&code).ok_or_else(|| DwarfError::Bad(format!("unknown abbrev {code}")))?;
    if abbrev.tag != DW_TAG_COMPILE_UNIT {
        return Err(DwarfError::Bad("root DIE is not a compile unit".into()));
    }
    let vals = read_die_attrs(unit, &mut at, abbrev)?;
    let name = attr_string(&vals, DW_AT_NAME, ctx.strs)?;
    let low_pc = vals.get(&DW_AT_LOW_PC).map(|v| v.as_u64()).unwrap_or(0);
    let size = vals.get(&DW_AT_HIGH_PC).map(|v| v.as_u64()).unwrap_or(0);
    let stmt_list = vals.get(&DW_AT_STMT_LIST).map(|v| v.as_u64());

    let (files, line_table) = match stmt_list {
        Some(off) => decode_line_program(line_sec, off)?,
        None => (Vec::new(), LineTable::default()),
    };

    // Children: subprograms.
    let mut subprograms = Vec::new();
    if abbrev.has_children {
        loop {
            let (code, n) = read_uleb(&unit[at..]).ok_or(DwarfError::Truncated("child DIE"))?;
            at += n;
            if code == 0 {
                break;
            }
            let ab = ctx
                .abbrevs
                .get(&code)
                .ok_or_else(|| DwarfError::Bad(format!("unknown abbrev {code}")))?;
            let vals = read_die_attrs(unit, &mut at, ab)?;
            let children =
                if ab.has_children { decode_inlined_tree(unit, &mut at, ctx)? } else { Vec::new() };
            if ab.tag == DW_TAG_SUBPROGRAM {
                let ranges = if let Some(roff) = vals.get(&DW_AT_RANGES) {
                    read_ranges(ctx.ranges, roff.as_u64())?
                } else {
                    let lo = vals.get(&DW_AT_LOW_PC).map(|v| v.as_u64()).unwrap_or(0);
                    let sz = vals.get(&DW_AT_HIGH_PC).map(|v| v.as_u64()).unwrap_or(0);
                    vec![(lo, lo + sz)]
                };
                subprograms.push(Subprogram {
                    name: attr_string(&vals, DW_AT_NAME, ctx.strs)?,
                    ranges,
                    decl_file: vals.get(&DW_AT_DECL_FILE).map(|v| v.as_u64() as u32).unwrap_or(0),
                    decl_line: vals.get(&DW_AT_DECL_LINE).map(|v| v.as_u64() as u32).unwrap_or(0),
                    inlines: children,
                });
            }
        }
    }

    Ok(CompileUnit { name, low_pc, high_pc: low_pc + size, files, subprograms, line_table })
}

/// Sections handed to the decoder (borrowed from an ELF image).
#[derive(Debug, Clone, Copy, Default)]
pub struct DebugSlices<'a> {
    /// `.debug_info` contents.
    pub info: &'a [u8],
    /// `.debug_abbrev` contents.
    pub abbrev: &'a [u8],
    /// `.debug_str` contents.
    pub strs: &'a [u8],
    /// `.debug_line` contents.
    pub line: &'a [u8],
    /// `.debug_ranges` contents.
    pub ranges: &'a [u8],
}

impl<'a> DebugSlices<'a> {
    /// Pull the five `.debug_*` sections out of a parsed ELF (missing
    /// sections become empty slices).
    pub fn from_elf(elf: &'a pba_elf::Elf) -> DebugSlices<'a> {
        DebugSlices {
            info: elf.section_data(".debug_info").unwrap_or(&[]),
            abbrev: elf.section_data(".debug_abbrev").unwrap_or(&[]),
            strs: elf.section_data(".debug_str").unwrap_or(&[]),
            line: elf.section_data(".debug_line").unwrap_or(&[]),
            ranges: elf.section_data(".debug_ranges").unwrap_or(&[]),
        }
    }
}

/// Decode all compile units in parallel (one rayon task per unit).
pub fn decode_parallel(s: DebugSlices<'_>) -> Result<DebugInfo> {
    let abbrevs = parse_abbrevs(s.abbrev)?;
    let slices = index_units(s.info)?;
    let ctx = UnitCtx { strs: s.strs, ranges: s.ranges, abbrevs: &abbrevs };
    let units: Vec<CompileUnit> = slices
        .par_iter()
        .map(|&sl| decode_unit(s.info, sl, s.line, &ctx))
        .collect::<Result<_>>()?;
    Ok(DebugInfo { units })
}

/// Serial decode for baseline measurements.
pub fn decode_serial(s: DebugSlices<'_>) -> Result<DebugInfo> {
    let abbrevs = parse_abbrevs(s.abbrev)?;
    let slices = index_units(s.info)?;
    let ctx = UnitCtx { strs: s.strs, ranges: s.ranges, abbrevs: &abbrevs };
    let units: Vec<CompileUnit> =
        slices.iter().map(|&sl| decode_unit(s.info, sl, s.line, &ctx)).collect::<Result<_>>()?;
    Ok(DebugInfo { units })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    fn sample_di() -> DebugInfo {
        DebugInfo {
            units: vec![
                CompileUnit {
                    name: "alpha.c".into(),
                    low_pc: 0x401000,
                    high_pc: 0x401800,
                    files: vec!["alpha.c".into(), "inline.h".into()],
                    subprograms: vec![
                        Subprogram {
                            name: "main".into(),
                            ranges: vec![(0x401000, 0x401100)],
                            decl_file: 0,
                            decl_line: 12,
                            inlines: vec![InlinedSub {
                                name: "helper".into(),
                                low_pc: 0x401020,
                                high_pc: 0x401060,
                                call_file: 0,
                                call_line: 20,
                                children: vec![InlinedSub {
                                    name: "inner".into(),
                                    low_pc: 0x401030,
                                    high_pc: 0x401040,
                                    call_file: 1,
                                    call_line: 4,
                                    children: vec![],
                                }],
                            }],
                        },
                        Subprogram {
                            name: "split_fn".into(),
                            ranges: vec![(0x401100, 0x401200), (0x401700, 0x401780)],
                            decl_file: 0,
                            decl_line: 80,
                            inlines: vec![],
                        },
                    ],
                    line_table: LineTable {
                        rows: vec![
                            LineRow { addr: 0x401000, file: 0, line: 12 },
                            LineRow { addr: 0x401004, file: 0, line: 13 },
                            LineRow { addr: 0x401020, file: 1, line: 3 },
                            LineRow { addr: 0x401100, file: 0, line: 81 },
                            // Large jumps exercise the non-special path.
                            LineRow { addr: 0x401700, file: 0, line: 500 },
                        ],
                    },
                },
                CompileUnit {
                    name: "beta.c".into(),
                    low_pc: 0x402000,
                    high_pc: 0x402400,
                    files: vec!["beta.c".into()],
                    subprograms: vec![Subprogram {
                        name: "worker".into(),
                        ranges: vec![(0x402000, 0x402200)],
                        decl_file: 0,
                        decl_line: 7,
                        inlines: vec![],
                    }],
                    line_table: LineTable {
                        rows: vec![LineRow { addr: 0x402000, file: 0, line: 7 }],
                    },
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip_serial() {
        let di = sample_di();
        let secs = encode(&di);
        let got = decode_serial(DebugSlices {
            info: &secs.info,
            abbrev: &secs.abbrev,
            strs: &secs.strs,
            line: &secs.line,
            ranges: &secs.ranges,
        })
        .unwrap();
        assert_eq!(got, di);
    }

    #[test]
    fn encode_decode_round_trip_parallel_matches_serial() {
        let di = sample_di();
        let secs = encode(&di);
        let slices = DebugSlices {
            info: &secs.info,
            abbrev: &secs.abbrev,
            strs: &secs.strs,
            line: &secs.line,
            ranges: &secs.ranges,
        };
        let serial = decode_serial(slices).unwrap();
        let parallel = decode_parallel(slices).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(parallel, di);
    }

    #[test]
    fn line_lookup_after_round_trip() {
        let secs = encode(&sample_di());
        let di = decode_parallel(DebugSlices {
            info: &secs.info,
            abbrev: &secs.abbrev,
            strs: &secs.strs,
            line: &secs.line,
            ranges: &secs.ranges,
        })
        .unwrap();
        let cu = &di.units[0];
        assert_eq!(cu.line_table.lookup(0x401005), Some((0, 13)));
        assert_eq!(cu.line_table.lookup(0x401021), Some((1, 3)));
        assert_eq!(cu.subprogram_at(0x401750).unwrap().name, "split_fn");
    }

    #[test]
    fn truncated_info_is_an_error() {
        let secs = encode(&sample_di());
        let cut = &secs.info[..secs.info.len() - 3];
        let r = decode_serial(DebugSlices {
            info: cut,
            abbrev: &secs.abbrev,
            strs: &secs.strs,
            line: &secs.line,
            ranges: &secs.ranges,
        });
        assert!(r.is_err());
    }

    #[test]
    fn empty_sections_decode_to_empty_forest() {
        let di = decode_parallel(DebugSlices::default()).unwrap();
        assert!(di.units.is_empty());
        assert_eq!(di.subprogram_count(), 0);
    }
}
