//! Property test: any well-formed debug-info model round-trips through
//! the DWARF encoder and the parallel decoder unchanged.

use pba_dwarf::decode::{decode_parallel, decode_serial, DebugSlices};
use pba_dwarf::encode::encode;
use pba_dwarf::{CompileUnit, DebugInfo, InlinedSub, LineRow, LineTable, Subprogram};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_]{0,24}"
}

fn arb_subprogram(base: u64) -> impl Strategy<Value = Subprogram> {
    (
        arb_name(),
        0u64..0x400,
        0x10u64..0x100,
        prop::option::of((0u64..0x100, 1u64..0x40)),
        0u32..4,
        1u32..500,
        prop::bool::ANY,
    )
        .prop_map(move |(name, off, len, cold, decl_file, decl_line, with_inline)| {
            let lo = base + off * 16;
            let hi = lo + len;
            let mut ranges = vec![(lo, hi)];
            if let Some((cold_off, cold_len)) = cold {
                let clo = base + 0x8000 + cold_off * 16;
                ranges.push((clo, clo + cold_len));
            }
            let inlines = if with_inline && len >= 0x20 {
                vec![InlinedSub {
                    name: format!("{name}_inl"),
                    low_pc: lo + 4,
                    high_pc: lo + 4 + (len / 2),
                    call_file: decl_file,
                    call_line: decl_line + 1,
                    children: vec![],
                }]
            } else {
                vec![]
            };
            Subprogram { name, ranges, decl_file, decl_line, inlines }
        })
}

fn arb_unit(idx: u64) -> impl Strategy<Value = CompileUnit> {
    let base = 0x40_0000 + idx * 0x10_000;
    (
        arb_name(),
        prop::collection::vec(arb_subprogram(base), 1..6),
        prop::collection::vec((0u64..0x1000, 0u32..2, 1u32..9999), 0..40),
    )
        .prop_map(move |(name, mut subprograms, rows)| {
            subprograms.sort_by_key(|s| s.low_pc());
            subprograms.dedup_by_key(|s| s.low_pc());
            let files = vec![format!("{name}.c"), format!("{name}.h")];
            let mut table = LineTable {
                rows: rows
                    .into_iter()
                    .map(|(off, file, line)| LineRow { addr: base + off * 4, file, line })
                    .collect(),
            };
            table.normalize();
            table.rows.dedup_by_key(|r| r.addr);
            let low_pc = subprograms.iter().map(|s| s.low_pc()).min().unwrap_or(base);
            let high_pc = subprograms
                .iter()
                .flat_map(|s| s.ranges.iter().map(|r| r.1))
                .max()
                .unwrap_or(base + 0x1000);
            CompileUnit { name, low_pc, high_pc, files, subprograms, line_table: table }
        })
}

fn arb_debug_info() -> impl Strategy<Value = DebugInfo> {
    prop::collection::vec(0u64..8, 0..6).prop_flat_map(|idxs| {
        let units: Vec<_> = idxs.into_iter().enumerate().map(|(i, _)| arb_unit(i as u64)).collect();
        units.prop_map(|units| DebugInfo { units })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_round_trips(mut di in arb_debug_info()) {
        di.normalize();
        let secs = encode(&di);
        let slices = DebugSlices {
            info: &secs.info,
            abbrev: &secs.abbrev,
            strs: &secs.strs,
            line: &secs.line,
            ranges: &secs.ranges,
        };
        let mut serial = decode_serial(slices).unwrap();
        serial.normalize();
        prop_assert_eq!(&serial, &di, "serial decode mismatch");
        let mut parallel = decode_parallel(slices).unwrap();
        parallel.normalize();
        prop_assert_eq!(&parallel, &di, "parallel decode mismatch");
    }

    /// Decoding truncated/corrupt inputs must error, never panic.
    #[test]
    fn truncation_never_panics(mut di in arb_debug_info(), cut in 0.0f64..1.0) {
        di.normalize();
        let secs = encode(&di);
        if secs.info.is_empty() {
            return Ok(());
        }
        let keep = ((secs.info.len() as f64) * cut) as usize;
        let slices = DebugSlices {
            info: &secs.info[..keep],
            abbrev: &secs.abbrev,
            strs: &secs.strs,
            line: &secs.line,
            ranges: &secs.ranges,
        };
        let _ = decode_serial(slices); // Ok or Err, both fine.
    }
}
