//! `pba` — command-line front end for parallel binary analysis.
//!
//! ```text
//! pba functions <elf> [--threads N]     list functions with block/edge counts
//! pba blocks <elf> <function-name>      dump one function's blocks
//! pba struct <elf> [--threads N]        recover program structure (hpcstruct)
//! pba stats <elf> [--threads N]         parse-work statistics
//! pba selftest [--funcs N]              generate a binary and check ground truth
//! ```

use pba::gen::{generate, GenConfig};
use pba::hpcstruct::{analyze, HsConfig};
use pba::parse::{parse_parallel, ParseInput, ParseResult};

fn usage() -> ! {
    eprintln!(
        "usage:\n  pba functions <elf> [--threads N]\n  pba blocks <elf> <name>\n  \
         pba struct <elf> [--threads N]\n  pba stats <elf> [--threads N]\n  pba selftest [--funcs N]"
    );
    std::process::exit(2)
}

fn flag(args: &[String], name: &str) -> Option<usize> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

fn load(path: &str, threads: usize) -> ParseResult {
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        eprintln!("pba: cannot read {path}: {e}");
        std::process::exit(1)
    });
    let elf = pba::elf::Elf::parse(bytes).unwrap_or_else(|e| {
        eprintln!("pba: {path}: {e}");
        std::process::exit(1)
    });
    let input = ParseInput::from_elf(&elf).unwrap_or_else(|e| {
        eprintln!("pba: {path}: {e}");
        std::process::exit(1)
    });
    parse_parallel(&input, threads)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads = flag(&args, "--threads")
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    match args.first().map(String::as_str) {
        Some("functions") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let r = load(path, threads);
            println!("{:<40} {:>18} {:>7} {:>7}  status", "name", "entry", "blocks", "edges");
            for f in r.cfg.functions.values() {
                let edges: usize = f.blocks.iter().map(|b| r.cfg.out_edges(*b).len()).sum();
                println!(
                    "{:<40} {:>#18x} {:>7} {:>7}  {:?}",
                    pba::elf::demangle::pretty_name(&f.name),
                    f.entry,
                    f.blocks.len(),
                    edges,
                    f.ret_status
                );
            }
        }
        Some("blocks") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let name = args.get(2).unwrap_or_else(|| usage());
            let r = load(path, threads);
            let f = r
                .cfg
                .functions
                .values()
                .find(|f| {
                    f.name.contains(name.as_str())
                        || pba::elf::demangle::pretty_name(&f.name).contains(name.as_str())
                })
                .unwrap_or_else(|| {
                    eprintln!("pba: no function matching {name:?}");
                    std::process::exit(1)
                });
            println!("{} at {:#x}:", f.name, f.entry);
            for &b in &f.blocks {
                let blk = &r.cfg.blocks[&b];
                println!("  block [{:#x}, {:#x})", blk.start, blk.end);
                for i in r.cfg.code.insns(blk.start, blk.end) {
                    println!("    {:#x}  {}", i.addr, i.mnemonic());
                }
                for e in r.cfg.out_edges(b) {
                    println!("    -> {:#x} ({:?})", e.dst, e.kind);
                }
            }
        }
        Some("struct") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let bytes = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("pba: cannot read {path}: {e}");
                std::process::exit(1)
            });
            let out =
                analyze(&bytes, &HsConfig { threads, name: path.clone() }).unwrap_or_else(|e| {
                    eprintln!("pba: {e}");
                    std::process::exit(1)
                });
            print!("{}", out.text);
            eprintln!(
                "# {} functions, {} loops, {} statements in {:.1} ms",
                out.structure.functions.len(),
                out.structure.loop_count(),
                out.structure.stmt_count(),
                out.times.total() * 1e3
            );
        }
        Some("stats") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let t = std::time::Instant::now();
            let r = load(path, threads);
            let dt = t.elapsed().as_secs_f64();
            let s = r.stats.snapshot();
            println!("parsed in {:.1} ms on {threads} threads", dt * 1e3);
            println!("functions          {:>10}", r.cfg.functions.len());
            println!("blocks             {:>10}", r.cfg.blocks.len());
            println!("edges              {:>10}", r.cfg.edges.len());
            println!("insns decoded      {:>10}", s.insns_decoded);
            println!("cache hits         {:>10}", s.cache_hits);
            println!("split iterations   {:>10}", s.split_iterations);
            println!("noreturn waits     {:>10}", s.noreturn_waits);
            println!("noreturn resumes   {:>10}", s.noreturn_resumes);
            println!("jts bounded        {:>10}", s.jt_bounded);
            println!("jts unbounded      {:>10}", s.jt_unbounded);
            println!("jt edges clamped   {:>10}", s.jt_edges_clamped);
            println!("tailcall flips     {:>10}", s.tailcall_flips);
        }
        Some("selftest") => {
            let funcs = flag(&args, "--funcs").unwrap_or(64);
            let g = generate(&GenConfig { num_funcs: funcs, seed: 0x5E1F, ..Default::default() });
            let elf = pba::elf::Elf::parse(g.elf.clone()).unwrap();
            let input = ParseInput::from_elf(&elf).unwrap();
            let r = parse_parallel(&input, threads);
            let mut bad = 0;
            for f in &g.truth.functions {
                let ok = r
                    .cfg
                    .functions
                    .get(&f.entry)
                    .map(|pf| {
                        let mut want = f.ranges.clone();
                        want.sort_unstable();
                        pf.ranges(&r.cfg) == want
                    })
                    .unwrap_or(false);
                if !ok {
                    bad += 1;
                    eprintln!("mismatch: {} at {:#x}", f.name, f.entry);
                }
            }
            println!(
                "selftest: {}/{} functions exact",
                g.truth.functions.len() - bad,
                g.truth.functions.len()
            );
            std::process::exit(if bad == 0 { 0 } else { 1 });
        }
        _ => usage(),
    }
}
