//! `pba` — command-line front end for parallel binary analysis.
//!
//! ```text
//! pba functions <elf> [options]         list functions with block/edge counts
//! pba blocks <elf> <function-name>      dump one function's blocks
//! pba struct <elf> [options]            recover program structure (hpcstruct)
//! pba stats <elf> [options]             parse-work statistics
//! pba selftest [--funcs N] [options]    generate a binary and check ground truth
//!
//! options:
//!   --threads N                   worker threads (0 = all available; default 0)
//!   --executor serial|parallel|async|auto   per-function dataflow executor
//! ```
//!
//! Every subcommand drives one [`Session`]: artifacts are parsed
//! lazily, memoized, and shared — the CLI is the same thin layer over
//! the session that a future daemon mode would be, where `struct` after
//! `functions` on the same file reuses the parse. Errors flow out as
//! [`pba::Error`] and are mapped to exit codes exactly once, in `main`.

use pba::gen::{generate, GenConfig};
use pba::{Error, ExecutorKind, Session, SessionConfig};

fn usage() -> ! {
    eprintln!(
        "usage:\n  pba functions <elf> [--threads N] [--executor serial|parallel|async|auto]\n  \
         pba blocks <elf> <name>\n  pba struct <elf> [--threads N] [--executor E]\n  \
         pba stats <elf> [--threads N]\n  pba selftest [--funcs N]"
    );
    std::process::exit(2)
}

fn flag(args: &[String], name: &str) -> Option<usize> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

/// Build the one configuration surface from the command line.
fn config(args: &[String], name: &str) -> SessionConfig {
    let threads = flag(args, "--threads").unwrap_or(0); // 0 = all available
    let executor = match args
        .iter()
        .position(|a| a == "--executor")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None => ExecutorKind::Serial,
        Some("serial") => ExecutorKind::Serial,
        Some("parallel") => ExecutorKind::Parallel(0),
        Some("async") => ExecutorKind::Async(0),
        Some("auto") => ExecutorKind::Auto,
        Some(_) => usage(),
    };
    SessionConfig::default().with_threads(threads).with_executor(executor).with_name(name)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The single place analysis errors become exit codes.
    match run(&args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("pba: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

fn run(args: &[String]) -> Result<i32, Error> {
    match args.first().map(String::as_str) {
        Some("functions") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let session = Session::open_path(path, config(args, path))?;
            let cfg = session.cfg()?;
            println!("{:<40} {:>18} {:>7} {:>7}  status", "name", "entry", "blocks", "edges");
            for f in cfg.functions.values() {
                let edges: usize = f.blocks.iter().map(|b| cfg.out_edges(*b).len()).sum();
                println!(
                    "{:<40} {:>#18x} {:>7} {:>7}  {:?}",
                    pba::elf::demangle::pretty_name(&f.name),
                    f.entry,
                    f.blocks.len(),
                    edges,
                    f.ret_status
                );
            }
            Ok(0)
        }
        Some("blocks") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let name = args.get(2).unwrap_or_else(|| usage());
            let session = Session::open_path(path, config(args, path))?;
            let cfg = session.cfg()?;
            let f = cfg
                .functions
                .values()
                .find(|f| {
                    f.name.contains(name.as_str())
                        || pba::elf::demangle::pretty_name(&f.name).contains(name.as_str())
                })
                .ok_or_else(|| Error::FunctionNotFound(name.clone()))?;
            println!("{} at {:#x}:", f.name, f.entry);
            for &b in &f.blocks {
                let blk = &cfg.blocks[&b];
                println!("  block [{:#x}, {:#x})", blk.start, blk.end);
                for i in cfg.code.insns(blk.start, blk.end) {
                    println!("    {:#x}  {}", i.addr, i.mnemonic());
                }
                for e in cfg.out_edges(b) {
                    println!("    -> {:#x} ({:?})", e.dst, e.kind);
                }
            }
            Ok(0)
        }
        Some("struct") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let session = Session::open_path(path, config(args, path))?;
            let out = session.structure()?;
            print!("{}", out.text);
            eprintln!(
                "# {} functions, {} loops, {} statements in {:.1} ms",
                out.structure.functions.len(),
                out.structure.loop_count(),
                out.structure.stmt_count(),
                out.times.total() * 1e3
            );
            Ok(0)
        }
        Some("stats") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let session = Session::open_path(path, config(args, path))?;
            let t = std::time::Instant::now();
            let cfg = session.cfg()?;
            let dt = t.elapsed().as_secs_f64();
            let s = session.parse_stats()?;
            let threads = session.config().effective_threads();
            println!("parsed in {:.1} ms on {threads} threads", dt * 1e3);
            println!("functions          {:>10}", cfg.functions.len());
            println!("blocks             {:>10}", cfg.blocks.len());
            println!("edges              {:>10}", cfg.edges.len());
            println!("insns decoded      {:>10}", s.insns_decoded);
            println!("cache hits         {:>10}", s.cache_hits);
            println!("split iterations   {:>10}", s.split_iterations);
            println!("noreturn waits     {:>10}", s.noreturn_waits);
            println!("noreturn resumes   {:>10}", s.noreturn_resumes);
            println!("jts bounded        {:>10}", s.jt_bounded);
            println!("jts unbounded      {:>10}", s.jt_unbounded);
            println!("jt edges clamped   {:>10}", s.jt_edges_clamped);
            println!("tailcall flips     {:>10}", s.tailcall_flips);
            Ok(0)
        }
        Some("selftest") => {
            let funcs = flag(args, "--funcs").unwrap_or(64);
            let g = generate(&GenConfig { num_funcs: funcs, seed: 0x5E1F, ..Default::default() });
            let session = Session::open(g.elf.clone(), config(args, "selftest"));
            let cfg = session.cfg()?;
            let mut bad = 0;
            for f in &g.truth.functions {
                let ok = cfg
                    .functions
                    .get(&f.entry)
                    .map(|pf| {
                        let mut want = f.ranges.clone();
                        want.sort_unstable();
                        pf.ranges(cfg) == want
                    })
                    .unwrap_or(false);
                if !ok {
                    bad += 1;
                    eprintln!("mismatch: {} at {:#x}", f.name, f.entry);
                }
            }
            println!(
                "selftest: {}/{} functions exact",
                g.truth.functions.len() - bad,
                g.truth.functions.len()
            );
            Ok(if bad == 0 { 0 } else { 1 })
        }
        _ => usage(),
    }
}
