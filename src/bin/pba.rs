//! `pba` — command-line front end for parallel binary analysis.
//!
//! ```text
//! pba functions <elf> [options]         list functions with block/edge counts
//! pba blocks <elf> <function-name>      dump one function's blocks
//! pba struct <elf> [--stats] [options]  recover program structure (hpcstruct)
//! pba stats <elf> [options]             parse-work statistics
//! pba selftest [--funcs N] [options]    generate a binary and check ground truth
//! pba gen <out> [--funcs N] [--seed S]  write a synthetic test binary
//! pba serve <addr> [--cap-mib N] [options]   run the analysis daemon
//! pba query <addr> <kind> [args] [--by-path] query a running daemon
//! pba topk <dir> <query-elf> [--k N]    offline corpus top-K (no daemon)
//!
//! query kinds:
//!   struct <elf>            program structure (one JSON line)
//!   features <elf>          feature index
//!   slice <elf> <entry>     jump-table slices of the function at <entry>
//!   similarity <a> <b>      cosine + Jaccard between two binaries
//!   ingest <elf>            fold the binary into the daemon's corpus index
//!   topk <elf> [--k N] [--exact]  top-K nearest corpus entries (LSH;
//!                           --exact = brute-force baseline)
//!   stats                   daemon counters + per-session stats
//!   evict [hash]            evict one session (or all)
//!   shutdown                stop the daemon
//!
//! options:
//!   --threads N                   worker threads (0 = all available; default 0)
//!   --executor serial|parallel|async|auto   per-function dataflow executor
//! ```
//!
//! `<addr>` is `unix:<path>`, `tcp:<host:port>`, a bare socket path, or
//! a bare `host:port`. A `query` ships the binary inline by default;
//! `--by-path` sends the (server-local) path instead, so the daemon
//! memory-maps the file itself.
//!
//! Every subcommand drives one [`Session`]: artifacts are parsed
//! lazily, memoized, and shared. `serve` lifts that across processes —
//! the daemon keeps sessions live in an LRU cache, so `query struct`
//! after `query functions` on the same file reuses the parse from
//! another client entirely. Errors flow out as [`pba::Error`] and are
//! mapped to exit codes exactly once, in `main`.

use pba::gen::{generate, GenConfig};
use pba::serve::{BinSpec, Client, Request, Response, ServeAddr, ServeConfig, Server};
use pba::{Error, ExecutorKind, Session, SessionConfig};

fn usage() -> ! {
    eprintln!(
        "usage:\n  pba functions <elf> [--threads N] [--executor serial|parallel|async|auto]\n  \
         pba blocks <elf> <name>\n  pba struct <elf> [--stats] [--threads N] [--executor E]\n  \
         pba stats <elf> [--threads N]\n  pba selftest [--funcs N]\n  \
         pba gen <out> [--funcs N] [--seed S]\n  \
         pba serve <addr> [--cap-mib N] [--threads N] [--executor E]\n  \
         pba query <addr> struct|features|slice|similarity|ingest|topk|stats|evict|shutdown \
         [args] [--k N] [--exact] [--by-path]\n  \
         pba topk <dir> <query-elf> [--k N]"
    );
    std::process::exit(2)
}

fn flag(args: &[String], name: &str) -> Option<usize> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

/// Parse a `0x`-prefixed or decimal u64 (entry addresses, hashes).
fn parse_u64(s: &str) -> Result<u64, Error> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| Error::Protocol(format!("not a number: {s:?}")))
}

/// One response, one line of JSON on stdout — greppable from scripts.
/// A closed pipe (`pba query ... | head`) is not an error worth dying
/// loudly for, so the write failure is swallowed.
fn print_json<T: serde::Serialize>(msg: &T) -> Result<(), Error> {
    use std::io::Write;
    let line = serde_json::to_string(msg).map_err(|e| Error::Protocol(e.to_string()))?;
    let _ = writeln!(std::io::stdout(), "{line}");
    Ok(())
}

/// Build the one configuration surface from the command line.
fn config(args: &[String], name: &str) -> SessionConfig {
    let threads = flag(args, "--threads").unwrap_or(0); // 0 = all available
    let executor = match args
        .iter()
        .position(|a| a == "--executor")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None => ExecutorKind::Serial,
        Some("serial") => ExecutorKind::Serial,
        Some("parallel") => ExecutorKind::Parallel(0),
        Some("async") => ExecutorKind::Async(0),
        Some("auto") => ExecutorKind::Auto,
        Some(_) => usage(),
    };
    SessionConfig::default().with_threads(threads).with_executor(executor).with_name(name)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The single place analysis errors become exit codes.
    match run(&args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("pba: {e}");
            std::process::exit(e.exit_code());
        }
    }
}

fn run(args: &[String]) -> Result<i32, Error> {
    match args.first().map(String::as_str) {
        Some("functions") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let session = Session::open_path(path, config(args, path))?;
            let cfg = session.cfg()?;
            println!("{:<40} {:>18} {:>7} {:>7}  status", "name", "entry", "blocks", "edges");
            for f in cfg.functions.values() {
                let edges: usize = f.blocks.iter().map(|b| cfg.out_edges(*b).len()).sum();
                println!(
                    "{:<40} {:>#18x} {:>7} {:>7}  {:?}",
                    pba::elf::demangle::pretty_name(&f.name),
                    f.entry,
                    f.blocks.len(),
                    edges,
                    f.ret_status
                );
            }
            Ok(0)
        }
        Some("blocks") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let name = args.get(2).unwrap_or_else(|| usage());
            let session = Session::open_path(path, config(args, path))?;
            let cfg = session.cfg()?;
            let f = cfg
                .functions
                .values()
                .find(|f| {
                    f.name.contains(name.as_str())
                        || pba::elf::demangle::pretty_name(&f.name).contains(name.as_str())
                })
                .ok_or_else(|| Error::FunctionNotFound(name.clone()))?;
            println!("{} at {:#x}:", f.name, f.entry);
            for &b in &f.blocks {
                let blk = &cfg.blocks[&b];
                println!("  block [{:#x}, {:#x})", blk.start, blk.end);
                for i in cfg.code.insns(blk.start, blk.end) {
                    println!("    {:#x}  {}", i.addr, i.mnemonic());
                }
                for e in cfg.out_edges(b) {
                    println!("    -> {:#x} ({:?})", e.dst, e.kind);
                }
            }
            Ok(0)
        }
        Some("struct") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let session = Session::open_path(path, config(args, path))?;
            let out = session.structure()?;
            print!("{}", out.text);
            eprintln!(
                "# {} functions, {} loops, {} statements in {:.1} ms",
                out.structure.functions.len(),
                out.structure.loop_count(),
                out.structure.stmt_count(),
                out.times.total() * 1e3
            );
            if args.iter().any(|a| a == "--stats") {
                // One machine-readable line (the same SessionStats the
                // daemon embeds in its responses), on stderr with the
                // summary so stdout stays the structure document.
                let line = serde_json::to_string(&session.stats())
                    .map_err(|e| Error::Protocol(e.to_string()))?;
                eprintln!("{line}");
            }
            Ok(0)
        }
        Some("stats") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let session = Session::open_path(path, config(args, path))?;
            let t = std::time::Instant::now();
            let cfg = session.cfg()?;
            let dt = t.elapsed().as_secs_f64();
            let s = session.parse_stats()?;
            let threads = session.config().effective_threads();
            println!("parsed in {:.1} ms on {threads} threads", dt * 1e3);
            println!("functions          {:>10}", cfg.functions.len());
            println!("blocks             {:>10}", cfg.blocks.len());
            println!("edges              {:>10}", cfg.edges.len());
            println!("insns decoded      {:>10}", s.insns_decoded);
            println!("cache hits         {:>10}", s.cache_hits);
            println!("split iterations   {:>10}", s.split_iterations);
            println!("noreturn waits     {:>10}", s.noreturn_waits);
            println!("noreturn resumes   {:>10}", s.noreturn_resumes);
            println!("jts bounded        {:>10}", s.jt_bounded);
            println!("jts unbounded      {:>10}", s.jt_unbounded);
            println!("jt edges clamped   {:>10}", s.jt_edges_clamped);
            println!("tailcall flips     {:>10}", s.tailcall_flips);
            Ok(0)
        }
        Some("selftest") => {
            let funcs = flag(args, "--funcs").unwrap_or(64);
            let g = generate(&GenConfig { num_funcs: funcs, seed: 0x5E1F, ..Default::default() });
            let session = Session::open(g.elf.clone(), config(args, "selftest"));
            let cfg = session.cfg()?;
            let mut bad = 0;
            for f in &g.truth.functions {
                let ok = cfg
                    .functions
                    .get(&f.entry)
                    .map(|pf| {
                        let mut want = f.ranges.clone();
                        want.sort_unstable();
                        pf.ranges(cfg) == want
                    })
                    .unwrap_or(false);
                if !ok {
                    bad += 1;
                    eprintln!("mismatch: {} at {:#x}", f.name, f.entry);
                }
            }
            println!(
                "selftest: {}/{} functions exact",
                g.truth.functions.len() - bad,
                g.truth.functions.len()
            );
            Ok(if bad == 0 { 0 } else { 1 })
        }
        Some("gen") => {
            let out = args.get(1).unwrap_or_else(|| usage());
            let funcs = flag(args, "--funcs").unwrap_or(64);
            let seed = flag(args, "--seed").unwrap_or(0x5E1F) as u64;
            let g = generate(&GenConfig { num_funcs: funcs, seed, ..Default::default() });
            std::fs::write(out, &g.elf)
                .map_err(|e| Error::Io { path: out.clone(), message: e.to_string() })?;
            eprintln!(
                "# wrote {out}: {} bytes, {} functions (seed {seed:#x})",
                g.elf.len(),
                g.truth.functions.len()
            );
            Ok(0)
        }
        Some("serve") => {
            let addr = args.get(1).unwrap_or_else(|| usage());
            let cap_mib = flag(args, "--cap-mib").unwrap_or(256);
            let server = Server::bind(
                &ServeAddr::parse(addr),
                ServeConfig { cap_bytes: cap_mib << 20, session: config(args, "serve") },
            )?;
            eprintln!("# pba daemon on {} (cache cap {cap_mib} MiB)", server.local_addr());
            let stats = server.run()?;
            // Lifetime counters as the daemon's last word, one JSON line.
            print_json(&stats)?;
            Ok(0)
        }
        Some("topk") => {
            // Offline corpus top-K: stream every file in <dir> through
            // an ephemeral session (features extracted in parallel on
            // the rayon pool, sessions dropped immediately — the same
            // one-resident-session discipline as daemon ingest), fold
            // into a banded-MinHash index, then query once.
            use rayon::prelude::*;
            let dir = args.get(1).unwrap_or_else(|| usage());
            let query_path = args.get(2).unwrap_or_else(|| usage());
            let k = flag(args, "--k").unwrap_or(5);
            let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
                .map_err(|e| Error::Io { path: dir.clone(), message: e.to_string() })?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_file())
                .collect();
            files.sort();
            let per_file = config(args, "topk").with_threads(1);
            let extracted: Vec<(u64, String, pba::binfeat::FeatureIndex)> = files
                .par_iter()
                .filter_map(|p| {
                    let path = p.to_str()?.to_string();
                    let session = Session::open_path(&path, per_file.clone()).ok()?;
                    let hash = session.content_hash();
                    session.features().ok()?;
                    match session.into_features() {
                        Some(Ok(f)) => Some((hash, path, f.index)),
                        _ => None,
                    }
                })
                .collect();
            let mut index = pba::binfeat::CorpusIndex::default();
            let mut paths: Vec<(u64, String)> = Vec::new();
            for (hash, path, feats) in extracted {
                if index.insert(hash, feats) {
                    paths.push((hash, path));
                }
            }
            eprintln!(
                "# indexed {} of {} files in {dir} ({} KiB index)",
                index.len(),
                files.len(),
                index.heap_bytes() >> 10
            );
            let query = Session::open_path(query_path, config(args, query_path))?;
            query.features()?;
            let qf = match query.into_features() {
                Some(Ok(f)) => f.index,
                Some(Err(e)) => return Err(e),
                None => return Err(Error::Protocol("query features unavailable".into())),
            };
            let result = index.query_topk(&qf, k, None);
            let hits: Vec<serde::Value> = result
                .hits
                .iter()
                .map(|h| {
                    let path = paths.iter().find(|(ph, _)| *ph == h.hash).map(|(_, p)| p.clone());
                    serde::Value::Object(vec![
                        ("path".into(), serde::Value::Str(path.unwrap_or_default())),
                        ("hash".into(), serde::Value::U64(h.hash)),
                        ("score".into(), serde::Value::F64(h.score)),
                    ])
                })
                .collect();
            print_json(&serde::Value::Object(vec![
                ("corpus".into(), serde::Value::U64(index.len() as u64)),
                ("candidates".into(), serde::Value::U64(result.candidates)),
                ("hits".into(), serde::Value::Array(hits)),
            ]))?;
            Ok(0)
        }
        Some("query") => {
            let addr = ServeAddr::parse(args.get(1).unwrap_or_else(|| usage()));
            let kind = args.get(2).unwrap_or_else(|| usage());
            let by_path = args.iter().any(|a| a == "--by-path");
            // A binary operand: inline bytes by default, server-local
            // path with --by-path (the daemon memory-maps it).
            let bin = |i: usize| -> Result<BinSpec, Error> {
                let p = args.get(i).unwrap_or_else(|| usage());
                if by_path {
                    return Ok(BinSpec::Path(p.clone()));
                }
                let bytes = std::fs::read(p)
                    .map_err(|e| Error::Io { path: p.clone(), message: e.to_string() })?;
                Ok(BinSpec::Bytes(bytes))
            };
            let req = match kind.as_str() {
                "struct" => Request::Struct { bin: bin(3)? },
                "features" => Request::Features { bin: bin(3)? },
                "slice" => Request::SliceFunc {
                    bin: bin(3)?,
                    entry: parse_u64(args.get(4).unwrap_or_else(|| usage()))?,
                },
                "similarity" => Request::Similarity { a: bin(3)?, b: bin(4)? },
                "ingest" => Request::CorpusIngest { bin: bin(3)? },
                "topk" => Request::CorpusTopk {
                    bin: bin(3)?,
                    k: flag(args, "--k").unwrap_or(5) as u64,
                    exact: args.iter().any(|a| a == "--exact"),
                },
                "stats" => Request::Stats,
                "evict" => Request::Evict {
                    hash: args
                        .get(3)
                        .filter(|a| !a.starts_with("--"))
                        .map(|h| parse_u64(h))
                        .transpose()?,
                },
                "shutdown" => Request::Shutdown,
                _ => usage(),
            };
            let reply = Client::connect(&addr)?.request(&req)?;
            if let Response::Error { code, message } = &reply {
                eprintln!("pba: server error: {message}");
                return Ok(*code);
            }
            print_json(&reply)?;
            Ok(0)
        }
        _ => usage(),
    }
}
