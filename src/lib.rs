//! # pba — Parallel Binary Analysis
//!
//! A from-scratch Rust implementation of **"Parallel Binary Code
//! Analysis"** (Meng, Anderson, Mellor-Crummey, Krentel, Miller,
//! Milaković — PPoPP 2021): multithreaded control-flow-graph
//! construction from binaries, plus the substrate stack it needs and
//! the two application case studies the paper evaluates.
//!
//! ## Quick start
//!
//! The entry point is a [`Session`]: one handle per binary, one
//! configuration surface, and every analysis artifact computed lazily,
//! at most once, shared by all consumers.
//!
//! ```
//! use pba::gen::{generate, GenConfig};
//! use pba::{Session, SessionConfig};
//!
//! // Generate a synthetic test binary (or bring your own ELF64 bytes).
//! let binary = generate(&GenConfig { num_funcs: 16, seed: 1, ..Default::default() });
//!
//! // One session per binary. threads: 0 = all available, everywhere.
//! let session = Session::open(binary.elf.clone(), SessionConfig::default().with_threads(4));
//!
//! // The CFG is parsed in parallel on first use, then memoized.
//! let cfg = session.cfg().unwrap();
//! assert!(!cfg.functions.is_empty());
//!
//! // Downstream artifacts reuse it — starting with the decode-once
//! // analysis IR (one instruction arena + graph + RPO ranks per
//! // function; every unique block decoded exactly once)...
//! let ir = session.ir().unwrap();
//! assert_eq!(ir.len(), cfg.functions.len());
//!
//! // ...which the dataflow facts for every function borrow...
//! let facts = session.dataflow().unwrap();
//! assert_eq!(facts.len(), cfg.functions.len());
//!
//! // ...per-function loop forests...
//! let entry = *cfg.functions.keys().next().unwrap();
//! let forest = session.loop_forest(entry).unwrap();
//! let _ = forest.max_depth();
//!
//! // ...and both application case studies, off the same single parse.
//! let structure = session.structure().unwrap();
//! let features = session.features().unwrap();
//! assert!(!structure.structure.functions.is_empty());
//! assert!(!features.index.is_empty());
//! assert_eq!(session.stats().cfg_parses, 1); // everything above: one CFG parse
//! assert_eq!(session.stats().ir_builds, 1); // ...and one decode of each block
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`session`] | `pba-driver` | the [`Session`] handle: lazily-memoized artifact accessors (incl. the decode-once `ir()`), [`SessionConfig`], unified [`Error`], `resident_bytes` accounting for every memoized artifact |
//! | [`concurrent`] | `pba-concurrent` | accessor-style concurrent hash map (TBB analogue), striped sets, counters, the block-or-share [`concurrent::Memo`] cell, the async executor's torn-read-free [`concurrent::FactSlots`] + single-residency [`concurrent::TaskSet`] |
//! | [`elf`] | `pba-elf` | ELF64 reader/writer, mini-demangler, multi-keyed parallel symbol table, the mmap-or-heap [`elf::ImageBytes`] shared input image |
//! | [`isa`] | `pba-isa` | architecture-independent instructions; x86-64 + rv-lite codecs |
//! | [`dwarf`] | `pba-dwarf` | DWARF-modeled debug info: encoder + parallel per-CU decoder |
//! | [`cfg`] | `pba-cfg` | CFG model with dense [`cfg::BlockIndex`]-backed adjacency, the six-operation algebra, the partial order + traversal orders |
//! | [`dataflow`] | `pba-dataflow` | generic dataflow engine (`DataflowSpec` + serial/round-based/barrier-free-async executors, allocation-free fixpoints), the memory plane (`Arc<[Insn]>` shared block storage in `FuncIr`/`BinaryIr`, dense block ranks end-to-end), liveness, reaching defs, stack height, slicing + jump-table evaluation |
//! | [`loops`] | `pba-loops` | dominators (dense `Vec<u32>` idoms over the shared block index), natural loops, nesting forests |
//! | [`parse`] | `pba-parse` | the serial & parallel CFG construction engine |
//! | [`gen`] | `pba-gen` | synthetic workload generator with exact ground truth |
//! | [`hpcstruct`] | `pba-hpcstruct` | program-structure recovery (performance analysis) |
//! | [`binfeat`] | `pba-binfeat` | forensic feature extraction, cosine/Jaccard similarity (`rank_topk` partial selection), and the banded-MinHash [`binfeat::CorpusIndex`] for sub-linear corpus top-K |
//! | [`serve`] | `pba-serve` | the analysis daemon: `content_hash → Session` LRU cache, length-prefixed framed protocol, corpus index hosting (`corpus_ingest`/`corpus_topk`), `pba serve` / `pba query` |

pub use pba_cfg as cfg;
pub use pba_concurrent as concurrent;
pub use pba_dataflow as dataflow;
pub use pba_driver as session;
pub use pba_dwarf as dwarf;
pub use pba_elf as elf;
pub use pba_gen as gen;
pub use pba_isa as isa;
pub use pba_loops as loops;
pub use pba_parse as parse;
pub use pba_serve as serve;

pub use pba_driver::{Error, ExecutorKind, Session, SessionConfig, SessionStats};

/// Program-structure recovery (the hpcstruct case study). The
/// byte-level [`hpcstruct::analyze`] is a thin session layer from
/// `pba-driver`; the artifact-level pipeline and structure types come
/// from `pba-hpcstruct`.
pub mod hpcstruct {
    pub use pba_driver::analyze;
    pub use pba_hpcstruct::*;
}

/// Forensic feature extraction (the BinFeat case study). The byte-level
/// [`binfeat::extract_binary`] / [`binfeat::analyze_corpus`] are thin
/// session layers from `pba-driver`; feature families, corpus reduction
/// and similarity scoring come from `pba-binfeat`.
pub mod binfeat {
    pub use pba_binfeat::*;
    pub use pba_driver::{analyze_corpus, extract_binary};
}
