//! # pba — Parallel Binary Analysis
//!
//! A from-scratch Rust implementation of **"Parallel Binary Code
//! Analysis"** (Meng, Anderson, Mellor-Crummey, Krentel, Miller,
//! Milaković — PPoPP 2021): multithreaded control-flow-graph
//! construction from binaries, plus the substrate stack it needs and
//! the two application case studies the paper evaluates.
//!
//! ## Quick start
//!
//! ```
//! use pba::gen::{generate, GenConfig};
//! use pba::parse::{parse_parallel, ParseInput};
//!
//! // Generate a synthetic test binary (or bring your own ELF64 bytes).
//! let binary = generate(&GenConfig { num_funcs: 16, seed: 1, ..Default::default() });
//! let elf = pba::elf::Elf::parse(binary.elf.clone()).unwrap();
//!
//! // Parse its control-flow graph on 4 threads.
//! let input = ParseInput::from_elf(&elf).unwrap();
//! let result = parse_parallel(&input, 4);
//! assert!(!result.cfg.functions.is_empty());
//!
//! // The CFG is now read-only: run any analysis in parallel. The
//! // dataflow engine fans liveness, reaching defs and stack height
//! // across all functions on a sized pool...
//! let analyses = pba::dataflow::run_all(&result.cfg, 4);
//! assert_eq!(analyses.len(), result.cfg.functions.len());
//!
//! // ...and per-function analyses run on either engine executor.
//! for f in result.cfg.functions.values() {
//!     let view = pba::dataflow::FuncView::new(&result.cfg, f);
//!     let loops = pba::loops::loop_forest(&view);
//!     let _ = loops.max_depth();
//! }
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`concurrent`] | `pba-concurrent` | accessor-style concurrent hash map (TBB analogue), striped sets, counters |
//! | [`elf`] | `pba-elf` | ELF64 reader/writer, mini-demangler, multi-keyed parallel symbol table |
//! | [`isa`] | `pba-isa` | architecture-independent instructions; x86-64 + rv-lite codecs |
//! | [`dwarf`] | `pba-dwarf` | DWARF-modeled debug info: encoder + parallel per-CU decoder |
//! | [`cfg`] | `pba-cfg` | CFG model, the six-operation algebra, the partial order + traversal orders |
//! | [`dataflow`] | `pba-dataflow` | generic dataflow engine (`DataflowSpec` + serial/rayon executors), liveness, reaching defs, stack height, slicing + jump-table evaluation |
//! | [`loops`] | `pba-loops` | dominators, natural loops, nesting forests |
//! | [`parse`] | `pba-parse` | the serial & parallel CFG construction engine |
//! | [`gen`] | `pba-gen` | synthetic workload generator with exact ground truth |
//! | [`hpcstruct`] | `pba-hpcstruct` | program-structure recovery (performance analysis) |
//! | [`binfeat`] | `pba-binfeat` | forensic feature extraction |

pub use pba_binfeat as binfeat;
pub use pba_cfg as cfg;
pub use pba_concurrent as concurrent;
pub use pba_dataflow as dataflow;
pub use pba_dwarf as dwarf;
pub use pba_elf as elf;
pub use pba_gen as gen;
pub use pba_hpcstruct as hpcstruct;
pub use pba_isa as isa;
pub use pba_loops as loops;
pub use pba_parse as parse;
